#include "device.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mc {
namespace sim {

namespace {

/**
 * Magnitudes of the injected hardware events. An injected throttle
 * episode models the package governor clamping harder than the
 * steady-state Eq. 3 prediction (hot ambient, neighbouring accelerator
 * on the same blade); a correctable ECC event stalls the kernel for a
 * scrub; a hung kernel never finishes on its own, so its simulated
 * duration is large enough to trip any sensible deadline.
 */
constexpr double throttleClockScale = 0.8;
constexpr double eccScrubStallSec = 25.0e-6;
constexpr double hungKernelSec = 1.0e9;

} // namespace

std::uint64_t
schedulePhases(std::uint64_t wavefronts, std::uint64_t slots)
{
    mc_assert(slots > 0, "scheduling requires at least one matrix unit");
    if (wavefronts == 0)
        return 1;
    return (wavefronts + slots - 1) / slots;
}

Mi250x::Mi250x(const arch::Cdna2Calibration &cal, const SimOptions &opts)
    : _cal(cal), _opts(opts), _power(_cal), _trace(_cal.idlePowerW),
      _noise(opts.noiseSeed)
{}

void
Mi250x::idle(double seconds)
{
    mc_assert(seconds >= 0.0, "cannot idle for negative time");
    _timelineSec += seconds;
}

double
Mi250x::mfmaCyclesPerWavefront(const KernelProfile &profile) const
{
    // Issue overhead comes from wavefronts contending for the CU's
    // shared issue resources, so it scales with Matrix Core occupancy:
    // a single wavefront measures the raw Table II latency, a
    // saturating kernel the full calibrated overhead.
    const double occupancy = std::min(
        1.0, static_cast<double>(profile.numWavefronts) /
                 static_cast<double>(_cal.matrixCoresPerGcd()));

    double cycles = 0.0;
    for (const auto &seg : profile.mfmaPerWavefront) {
        mc_assert(seg.inst->arch == _cal.arch,
                  "kernel '", profile.label, "' contains a ",
                  arch::gpuArchName(seg.inst->arch),
                  " instruction on a ", arch::gpuArchName(_cal.arch),
                  " device: ", seg.inst->mnemonic);
        const double overhead =
            _cal.perfFor(seg.inst->typeAB).issueOverheadFrac * occupancy;
        cycles += static_cast<double>(seg.countPerWavefront) *
                  seg.inst->latencyCycles * (1.0 + overhead);
    }
    return cycles;
}

double
Mi250x::gcdBusySeconds(const KernelProfile &profile, double freq_hz,
                       std::uint64_t *phases_out) const
{
    const auto mc_slots =
        static_cast<std::uint64_t>(_cal.matrixCoresPerGcd());
    const std::uint64_t phases =
        schedulePhases(profile.numWavefronts, mc_slots);
    if (phases_out)
        *phases_out = phases;

    mc_assert(profile.mcEfficiency > 0.0 && profile.mcEfficiency <= 1.0,
              "mcEfficiency must be in (0, 1]");
    const double rounds =
        profile.scheduleMode == ScheduleMode::Quantized
            ? static_cast<double>(phases)
            : std::max(1.0, static_cast<double>(profile.numWavefronts) /
                                static_cast<double>(mc_slots));
    const double mc_cycles = rounds * mfmaCyclesPerWavefront(profile) /
                             profile.mcEfficiency;

    // VALU work spreads over the SIMDs the launched wavefronts can
    // occupy; it overlaps with Matrix Core execution.
    const auto simd_slots = static_cast<std::uint64_t>(
        _cal.cusPerGcd * _cal.simdsPerCu);
    const std::uint64_t active_simds =
        std::max<std::uint64_t>(1,
            std::min(profile.numWavefronts, simd_slots));
    double valu_insts = 0.0;
    for (const auto &seg : profile.valuTotal)
        valu_insts += static_cast<double>(seg.instCount);
    mc_assert(profile.simdEfficiency > 0.0 && profile.simdEfficiency <= 1.0,
              "simdEfficiency must be in (0, 1]");
    const double valu_cycles =
        valu_insts * _cal.cyclesPerValuInst /
        (static_cast<double>(active_simds) * profile.simdEfficiency);

    const double compute_sec = std::max(mc_cycles, valu_cycles) / freq_hz;

    mc_assert(profile.bwEfficiency > 0.0 && profile.bwEfficiency <= 1.0,
              "bwEfficiency must be in (0, 1]");
    const double bytes = profile.hbmReadBytes + profile.hbmWriteBytes;
    const double mem_sec = bytes / (_cal.hbmBwPerGcd * profile.bwEfficiency);

    // Dispatch overlaps with execution once the device is full; only
    // the pipeline-fill prefix is serial.
    const double serial_wgs = static_cast<double>(
        std::min<std::uint64_t>(profile.numWorkgroups,
                                _cal.dispatchPipelineDepth));
    const double dispatch_sec =
        serial_wgs * _cal.dispatchCyclesPerWorkgroup / freq_hz;

    return std::max(compute_sec, mem_sec) + dispatch_sec;
}

KernelResult
Mi250x::run(const KernelProfile &profile, const std::vector<int> &gcds)
{
    mc_assert(!gcds.empty(), "run requires at least one GCD");
    mc_assert(static_cast<int>(gcds.size()) <= _cal.gcdsPerPackage,
              "more GCDs requested than the package has");
    for (std::size_t i = 0; i < gcds.size(); ++i) {
        mc_assert(gcds[i] >= 0 && gcds[i] < _cal.gcdsPerPackage,
                  "GCD id ", gcds[i], " out of range");
        for (std::size_t j = i + 1; j < gcds.size(); ++j)
            mc_assert(gcds[i] != gcds[j], "duplicate GCD id in run");
    }

    const int active_gcds = static_cast<int>(gcds.size());
    const arch::DataType dom = profile.dominantType();
    const double flops_per_gcd = profile.mfmaFlops() + profile.simdFlops();
    const double total_flops = flops_per_gcd * active_gcds;

    std::uint64_t phases = 1;
    const double launch = _cal.launchLatencySec;

    // --- DVFS governor ---------------------------------------------------
    // Package power is linear in throughput (Eq. 3); if the projected
    // steady-state power exceeds the regulation target, the governor
    // lowers the engine clock. Compute-bound time scales inversely with
    // clock; memory-bound time does not, so we bisect on the clock scale.
    double clock_scale = 1.0;
    bool throttled = false;
    if (_opts.enableDvfs) {
        auto power_at = [&](double scale) {
            const double busy =
                gcdBusySeconds(profile, _cal.clockHz * scale, nullptr);
            const double th = total_flops / (busy + launch);
            return _power.activeWatts(dom, active_gcds, th);
        };
        const double target = _power.governorTargetWatts();
        if (power_at(1.0) > target) {
            throttled = true;
            double lo = 0.05, hi = 1.0;
            for (int iter = 0; iter < 60; ++iter) {
                const double mid = 0.5 * (lo + hi);
                if (power_at(mid) > target)
                    hi = mid;
                else
                    lo = mid;
            }
            clock_scale = lo;
        }
    }

    fault::Injector *faults = _opts.faults;
    if (faults && faults->fire(fault::FaultSite::Throttle)) {
        // An injected thermal episode: the governor clamps below its
        // steady-state Eq. 3 operating point for this kernel.
        throttled = true;
        clock_scale *= throttleClockScale;
    }

    double busy = gcdBusySeconds(profile, _cal.clockHz * clock_scale,
                                 &phases) + launch;

    if (_opts.enableNoise && _opts.noiseSigma > 0.0) {
        const double factor =
            1.0 + _opts.noiseSigma * _noise.nextGaussian();
        busy *= std::max(0.5, factor);
    }

    if (faults && faults->fire(fault::FaultSite::EccCorrectable))
        busy += eccScrubStallSec;
    if (faults && faults->fire(fault::FaultSite::Hang))
        busy = hungKernelSec;

    KernelResult result;
    result.label = profile.label;
    result.startSec = _timelineSec;
    result.endSec = _timelineSec + busy;
    result.seconds = busy;
    result.mfmaFlops = profile.mfmaFlops() * active_gcds;
    result.simdFlops = profile.simdFlops() * active_gcds;
    result.effClockHz = _cal.clockHz * clock_scale;
    result.throttled = throttled;
    result.phases = phases;
    result.activeGcds = active_gcds;

    HwCounters counters = profile.expectedCounters();
    for (int g = 1; g < active_gcds; ++g)
        counters += profile.expectedCounters();
    result.counters = counters;

    result.avgPowerW =
        _power.activeWatts(dom, active_gcds, result.throughput());

    if (faults && faults->fire(fault::FaultSite::EccUncorrectable))
        result.fault = ErrorCode::DataLoss;

    _trace.addSegment(result.startSec, result.endSec, result.avgPowerW);
    _timelineSec = result.endSec;
    return result;
}

KernelResult
Mi250x::runOnGcd(const KernelProfile &profile, int gcd)
{
    return run(profile, {gcd});
}

KernelResult
Mi250x::measureKernel(const KernelProfile &profile)
{
    return measureKernel(profile, _noise);
}

KernelResult
Mi250x::measureKernel(const KernelProfile &profile, Rng &noise) const
{
    const arch::DataType dom = profile.dominantType();

    // The injector pointer lives in the (const) options, but drawing
    // from it mutates its streams: callers sharing a const device
    // across threads must leave opts.faults null (sweeps wire the
    // injector into per-point devices instead).
    fault::Injector *faults = _opts.faults;
    bool throttled = false;
    double clock_hz = _cal.clockHz;
    if (faults && faults->fire(fault::FaultSite::Throttle)) {
        throttled = true;
        clock_hz *= throttleClockScale;
    }

    std::uint64_t phases = 1;
    double busy = gcdBusySeconds(profile, clock_hz, &phases) +
                  _cal.launchLatencySec;
    if (_opts.enableNoise && _opts.noiseSigma > 0.0) {
        const double factor =
            1.0 + _opts.noiseSigma * noise.nextGaussian();
        busy *= std::max(0.5, factor);
    }

    if (faults && faults->fire(fault::FaultSite::EccCorrectable))
        busy += eccScrubStallSec;
    if (faults && faults->fire(fault::FaultSite::Hang))
        busy = hungKernelSec;

    KernelResult result;
    result.label = profile.label;
    result.seconds = busy;
    result.endSec = busy;
    result.mfmaFlops = profile.mfmaFlops();
    result.simdFlops = profile.simdFlops();
    result.counters = profile.expectedCounters();
    result.effClockHz = clock_hz;
    result.throttled = throttled;
    result.phases = phases;
    result.activeGcds = 1;
    result.avgPowerW = _power.activeWatts(dom, 1, result.throughput());
    if (faults && faults->fire(fault::FaultSite::EccUncorrectable))
        result.fault = ErrorCode::DataLoss;
    return result;
}

A100::A100(const arch::AmpereCalibration &cal, const SimOptions &opts)
    : _cal(cal), _opts(opts), _noise(opts.noiseSeed ^ 0xa100)
{}

KernelResult
A100::run(const KernelProfile &profile)
{
    mc_assert(profile.valuTotal.empty(),
              "the A100 model only executes Tensor Core profiles");

    const double occupancy = std::min(
        1.0, static_cast<double>(profile.numWavefronts) /
                 static_cast<double>(tensorCores()));

    double cycles_per_warp = 0.0;
    for (const auto &seg : profile.mfmaPerWavefront) {
        mc_assert(seg.inst->arch == arch::GpuArch::Ampere,
                  "kernel '", profile.label, "' contains a non-Ampere "
                  "instruction: ", seg.inst->mnemonic);
        const double overhead =
            _cal.issueOverheadFor(seg.inst->typeAB) * occupancy;
        cycles_per_warp += static_cast<double>(seg.countPerWavefront) *
                           seg.inst->latencyCycles * (1.0 + overhead);
    }

    const auto slots = static_cast<std::uint64_t>(tensorCores());
    const std::uint64_t phases =
        schedulePhases(profile.numWavefronts, slots);
    double busy = static_cast<double>(phases) * cycles_per_warp /
                  _cal.clockHz + 5.0e-6;

    if (_opts.enableNoise && _opts.noiseSigma > 0.0) {
        const double factor =
            1.0 + _opts.noiseSigma * _noise.nextGaussian();
        busy *= std::max(0.5, factor);
    }

    KernelResult result;
    result.label = profile.label;
    result.seconds = busy;
    result.endSec = busy;
    result.mfmaFlops = profile.mfmaFlops();
    result.counters = profile.expectedCounters();
    result.effClockHz = _cal.clockHz;
    result.phases = phases;
    return result;
}

} // namespace sim
} // namespace mc
