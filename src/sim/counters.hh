/**
 * @file
 * Hardware performance counters of the simulated GPU.
 *
 * Models the SQ (sequencer) counters rocprof exposes on CDNA2, with the
 * documented semantics the paper's Eq. 1 relies on:
 *  - SQ_INSTS_VALU_MFMA_MOPS_<T> increments once per 512 matrix
 *    floating-point operations performed by Matrix Cores with A/B
 *    element type <T>;
 *  - SQ_INSTS_VALU_{ADD,MUL,FMA,TRANS,XFER}_<T> increment once per
 *    wavefront VALU instruction (packed 2-wide F16 ops count as two
 *    instruction-equivalents so the FLOP formulas stay exact).
 */

#ifndef MC_SIM_COUNTERS_HH
#define MC_SIM_COUNTERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/types.hh"

namespace mc {
namespace sim {

/** VALU instruction categories tracked per datatype. */
enum class ValuOp
{
    Add,
    Mul,
    Fma,
    Xfer, ///< conversions and register moves (no FLOPs)
};

/** Number of ValuOp categories. */
inline constexpr int numValuOps = 4;

/** Datatypes with dedicated counter banks. */
inline constexpr arch::DataType counterTypes[] = {
    arch::DataType::F16,
    arch::DataType::BF16,
    arch::DataType::F32,
    arch::DataType::F64,
    arch::DataType::I8,
};

/** Number of counter datatype banks. */
inline constexpr int numCounterTypes = 5;

/** Index of a datatype's counter bank; fatal for non-counted types. */
int counterTypeIndex(arch::DataType dt);

/**
 * A snapshot of the per-kernel SQ counters.
 */
struct HwCounters
{
    /** MFMA matrix ops / 512, indexed by counterTypeIndex of the AB type. */
    std::uint64_t mfmaMops[numCounterTypes] = {};
    /** VALU wavefront instructions, [type bank][ValuOp]. */
    std::uint64_t valu[numCounterTypes][numValuOps] = {};
    /** Total MFMA instruction issues (all types). */
    std::uint64_t mfmaInstructions = 0;

    /** Accumulate another snapshot into this one. */
    HwCounters &operator+=(const HwCounters &other);

    /** Record @p matrix_ops MFMA matrix operations of AB type @p dt. */
    void addMfmaOps(arch::DataType ab_type, std::uint64_t matrix_ops,
                    std::uint64_t instructions);

    /** Record @p count VALU wavefront instructions. */
    void addValu(arch::DataType dt, ValuOp op, std::uint64_t count);

    std::uint64_t mops(arch::DataType ab_type) const;
    std::uint64_t valuCount(arch::DataType dt, ValuOp op) const;

    /**
     * Look a counter up by its rocprof name, e.g.
     * "SQ_INSTS_VALU_MFMA_MOPS_F64" or "SQ_INSTS_VALU_ADD_F32".
     * Unknown names are a fatal error, mirroring rocprof's input check.
     */
    std::uint64_t byName(const std::string &name) const;

    /** All counter names this model exposes. */
    static std::vector<std::string> counterNames();
};

/** The 512 matrix-ops-per-MOPS-increment hardware constant. */
inline constexpr std::uint64_t mopsGranularity = 512;

} // namespace sim
} // namespace mc

#endif // MC_SIM_COUNTERS_HH
