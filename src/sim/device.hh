/**
 * @file
 * The cycle-accounting device models: the MI250X package (two CDNA2
 * GCDs) and the A100 comparison device.
 *
 * Execution model for one GCD:
 *  - each CU owns four Matrix Cores; a wavefront executing MFMA work
 *    occupies one Matrix Core, so one GCD sustains at most
 *    440 concurrently executing MFMA wavefronts (the min(N_WF, 440)
 *    term of the paper's Eq. 2);
 *  - wavefronts beyond that run in additional phases, exactly the
 *    behaviour Section V-B describes for 660 wavefronts;
 *  - the sustained issue interval of an MFMA instruction is its Table II
 *    latency inflated by the calibrated per-datatype overhead;
 *  - VALU work occupies the CU SIMDs in parallel with the Matrix Cores;
 *  - memory-bound kernels are limited by the HBM bandwidth model;
 *  - a package-level DVFS governor scales the clock down when projected
 *    power exceeds the regulation target (which is what caps two-GCD
 *    FP64 at 72 % of peak while one GCD reaches 85 %).
 */

#ifndef MC_SIM_DEVICE_HH
#define MC_SIM_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/calibration.hh"
#include "common/random.hh"
#include "common/status.hh"
#include "fault/injector.hh"
#include "sim/counters.hh"
#include "sim/kernel.hh"
#include "sim/power.hh"

namespace mc {
namespace sim {

/** Tunable simulation options on top of the device calibration. */
struct SimOptions
{
    /** Relative sigma of the multiplicative run-to-run timing noise. */
    double noiseSigma = 0.003;
    /** Disable to get perfectly deterministic timing (used by tests). */
    bool enableNoise = true;
    /** Disable to model a device with the power governor off. */
    bool enableDvfs = true;
    /** Seed of the measurement-noise stream. */
    std::uint64_t noiseSeed = 0x6d6331;
    /**
     * Optional fault injector (not owned; must outlive the device).
     * Null disables injection. The injector is stateful: a device
     * wired to one must not be driven from several threads, so sweeps
     * give each point its own device + injector (see
     * docs/RESILIENCE.md).
     */
    fault::Injector *faults = nullptr;
};

/** Outcome of one kernel execution on the simulated device. */
struct KernelResult
{
    std::string label;

    double startSec = 0.0; ///< device-timeline start
    double endSec = 0.0;   ///< device-timeline end
    /** Kernel duration including launch/dispatch overhead, seconds. */
    double seconds = 0.0;

    double mfmaFlops = 0.0; ///< matrix ops executed on Matrix Cores
    double simdFlops = 0.0; ///< vector ops executed on SIMDs

    HwCounters counters;

    double avgPowerW = 0.0;
    double effClockHz = 0.0;
    bool throttled = false;
    /** Wavefront execution phases (ceil(N_WF / matrix cores)). */
    std::uint64_t phases = 1;
    int activeGcds = 1;

    /**
     * Ok for a clean run; an error code when a fault fired during
     * execution (e.g. DataLoss for an uncorrectable ECC event). The
     * timing fields still describe the (wasted) execution.
     */
    ErrorCode fault = ErrorCode::Ok;

    /** True when the result is usable (no fault fired). */
    bool ok() const { return fault == ErrorCode::Ok; }

    /** Total delivered FLOP/s. */
    double throughput() const
    {
        return seconds > 0.0 ? (mfmaFlops + simdFlops) / seconds : 0.0;
    }
};

/**
 * The simulated MI250X package.
 */
class Mi250x
{
  public:
    explicit Mi250x(const arch::Cdna2Calibration &cal = arch::defaultCdna2(),
                    const SimOptions &opts = SimOptions());

    const arch::Cdna2Calibration &calibration() const { return _cal; }
    const SimOptions &options() const { return _opts; }
    const PowerModel &powerModel() const { return _power; }

    /** Package power trace over the device timeline. */
    const PowerTrace &trace() const { return _trace; }

    /** Current end of the device timeline, seconds. */
    double timelineSec() const { return _timelineSec; }

    /** Advance the timeline at idle power (between experiments). */
    void idle(double seconds);

    /**
     * Run @p profile concurrently on the GCDs listed in @p gcds (each
     * GCD executes the full profile, as the paper does when using both
     * dies). GCD ids are 0 or 1; duplicates are a fatal error.
     */
    KernelResult run(const KernelProfile &profile,
                     const std::vector<int> &gcds);

    /** Run on a single GCD. */
    KernelResult runOnGcd(const KernelProfile &profile, int gcd = 0);

    /**
     * Compute the result of running @p profile on one GCD *without*
     * advancing the device timeline or writing the power trace. Used
     * by the asynchronous runtime, which manages its own overlapping
     * timeline per GCD. Package-level DVFS coupling between
     * concurrently running GCDs is not modelled on this path.
     *
     * Draws measurement noise from the device's own stream.
     */
    KernelResult measureKernel(const KernelProfile &profile);

    /**
     * The timeline-free measurement path with an explicit noise
     * stream: const because it touches no device state, so callers
     * that own @p noise (one stream per sweep point) can measure from
     * several threads against one shared const device.
     */
    KernelResult measureKernel(const KernelProfile &profile,
                               Rng &noise) const;

    /**
     * Deterministically restart the measurement-noise stream.
     *
     * The sweep engine seeds each (bench, point, repetition) with a
     * derived seed so parallel sweeps reproduce serial output exactly.
     */
    void reseedNoise(std::uint64_t seed) { _noise = Rng(seed); }

    /** Matrix Cores per GCD (the 440 of Eq. 2). */
    int matrixCoresPerGcd() const { return _cal.matrixCoresPerGcd(); }

  private:
    /** Per-wavefront MFMA cycles at the sustained issue interval. */
    double mfmaCyclesPerWavefront(const KernelProfile &profile) const;

    /** GCD busy seconds at clock @p freq_hz (excludes fixed launch). */
    double gcdBusySeconds(const KernelProfile &profile, double freq_hz,
                          std::uint64_t *phases_out) const;

    arch::Cdna2Calibration _cal;
    SimOptions _opts;
    PowerModel _power;
    PowerTrace _trace;
    double _timelineSec = 0.0;
    Rng _noise;
};

/**
 * The simulated A100 used by the cross-vendor comparison (Fig. 4).
 * Only the Tensor Core throughput path is modelled; the paper does not
 * characterize A100 power.
 */
class A100
{
  public:
    explicit A100(const arch::AmpereCalibration &cal = arch::defaultAmpere(),
                  const SimOptions &opts = SimOptions());

    const arch::AmpereCalibration &calibration() const { return _cal; }

    /** Run a Tensor-Core-only profile on the whole device. */
    KernelResult run(const KernelProfile &profile);

    /** Tensor Cores on the device. */
    int tensorCores() const { return _cal.smCount * _cal.tensorCoresPerSm; }

  private:
    arch::AmpereCalibration _cal;
    SimOptions _opts;
    Rng _noise;
};

/**
 * Phase count for distributing @p wavefronts over @p slots matrix
 * units: ceil(wavefronts / slots), minimum 1.
 */
std::uint64_t schedulePhases(std::uint64_t wavefronts, std::uint64_t slots);

} // namespace sim
} // namespace mc

#endif // MC_SIM_DEVICE_HH
