/**
 * @file
 * A multi-GPU node model.
 *
 * The paper's AMD testbed is a node with four MI250X packages (the
 * Frontier blade configuration). Packages are independent for compute
 * and power — there is no package-to-package work sharing in any of
 * the paper's experiments — so the node model owns N package models,
 * broadcasts kernels, and aggregates throughput, power, and energy at
 * the node level.
 */

#ifndef MC_SIM_NODE_HH
#define MC_SIM_NODE_HH

#include <memory>
#include <vector>

#include "sim/device.hh"

namespace mc {
namespace sim {

/** Aggregate outcome of one node-wide kernel broadcast. */
struct NodeRunResult
{
    /** Per-package results, one per package. */
    std::vector<KernelResult> perPackage;

    /** Slowest package's duration (the node-level completion time). */
    double seconds = 0.0;
    /** Total FLOPs executed across the node. */
    double totalFlops = 0.0;
    /** Sum of package average powers while running, watts. */
    double totalPowerW = 0.0;

    /** Node-level delivered FLOP/s. */
    double
    throughput() const
    {
        return seconds > 0.0 ? totalFlops / seconds : 0.0;
    }

    /** Node-level FLOP/s per watt. */
    double
    efficiency() const
    {
        return totalPowerW > 0.0 ? throughput() / totalPowerW : 0.0;
    }
};

/**
 * N independent MI250X packages sharing a chassis.
 */
class Node
{
  public:
    /**
     * @param packages number of GPU packages (the testbed has four).
     */
    explicit Node(int packages = 4,
                  const arch::Cdna2Calibration &cal = arch::defaultCdna2(),
                  const SimOptions &opts = SimOptions());

    int packageCount() const { return static_cast<int>(_gpus.size()); }

    /** Access one package model. */
    Mi250x &package(int index);
    const Mi250x &package(int index) const;

    /**
     * Run @p profile concurrently on every GCD of the first
     * @p packages packages (all of them by default).
     */
    NodeRunResult runEverywhere(const KernelProfile &profile,
                                int packages = -1);

    /** Node idle power (sum of package idle powers), watts. */
    double idlePowerW() const;

  private:
    std::vector<std::unique_ptr<Mi250x>> _gpus;
};

} // namespace sim
} // namespace mc

#endif // MC_SIM_NODE_HH
