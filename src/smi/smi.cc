#include "smi.hh"

#include <cmath>

#include "common/logging.hh"

namespace mc {
namespace smi {

PowerSensor::PowerSensor(const sim::PowerSource &trace,
                         double averaging_window_sec, double noise_watts,
                         std::uint64_t seed)
    : _trace(trace), _windowSec(averaging_window_sec),
      _noiseWatts(noise_watts), _rng(seed)
{
    mc_assert(averaging_window_sec > 0.0,
              "sensor averaging window must be positive");
    mc_assert(noise_watts >= 0.0, "sensor noise must be non-negative");
}

double
PowerSensor::averagePower(double t)
{
    // A stale read repeats the previous value verbatim: the firmware
    // failed to refresh its rolling average before the poll.
    if (_faults && _hasLast &&
        _faults->fire(fault::FaultSite::SmiStale)) {
        return _lastWatts;
    }

    const double start = std::max(0.0, t - _windowSec);
    double watts = (t > start) ? _trace.averageWatts(start, t)
                               : _trace.wattsAt(t);
    if (_noiseWatts > 0.0)
        watts += _noiseWatts * _rng.nextGaussian();
    // The SMI reports power in units of 1/256 W.
    watts = std::round(watts * 256.0) / 256.0;
    watts = std::max(0.0, watts);
    _lastWatts = watts;
    _hasLast = true;
    return watts;
}

PowerSampler::PowerSampler(PowerSensor &sensor, double period_sec)
    : _sensor(sensor), _periodSec(period_sec)
{
    mc_assert(period_sec > 0.0, "sampling period must be positive");
}

std::vector<PowerSample>
PowerSampler::sampleInterval(double start_sec, double end_sec)
{
    mc_assert(end_sec >= start_sec, "sampling interval is reversed");
    std::vector<PowerSample> samples;
    // Index-based stepping avoids floating-point drift over long runs.
    for (std::size_t i = 0;; ++i) {
        const double t = start_sec + static_cast<double>(i) * _periodSec;
        if (t >= end_sec)
            break;
        // A dropped poll: the rsmi call failed, the loop records
        // nothing for this period and moves on.
        if (_faults && _faults->fire(fault::FaultSite::SmiDropout)) {
            ++_droppedPolls;
            continue;
        }
        samples.push_back(PowerSample{t, _sensor.averagePower(t)});
    }
    return samples;
}

PmCounters::PmCounters(const sim::PowerSource &trace,
                       double update_period_sec)
    : _trace(trace), _periodSec(update_period_sec)
{
    mc_assert(update_period_sec > 0.0,
              "counter update period must be positive");
}

double
PmCounters::quantize(double t) const
{
    if (t <= 0.0)
        return 0.0;
    return std::floor(t / _periodSec) * _periodSec;
}

double
PmCounters::energyJoules(double t) const
{
    const double edge = quantize(t);
    return edge > 0.0 ? _trace.energyJoules(0.0, edge) : 0.0;
}

double
PmCounters::powerWatts(double t) const
{
    return _trace.wattsAt(quantize(t));
}

double
PmCounters::averageWatts(double start_sec, double end_sec) const
{
    const double e0 = energyJoules(start_sec);
    const double e1 = energyJoules(end_sec);
    const double span = quantize(end_sec) - quantize(start_sec);
    mc_assert(span > 0.0,
              "pm_counters average needs an interval spanning at least "
              "one counter update");
    return (e1 - e0) / span;
}

Result<double>
meanWatts(const std::vector<PowerSample> &samples)
{
    if (samples.empty()) {
        return Status::unavailable(
            "no power samples (every poll dropped?)");
    }
    double sum = 0.0;
    for (const auto &s : samples)
        sum += s.watts;
    return sum / static_cast<double>(samples.size());
}

Result<double>
efficiencyFlopsPerWatt(double flops_per_sec,
                       const std::vector<PowerSample> &samples)
{
    const Result<double> watts = meanWatts(samples);
    if (!watts.isOk())
        return watts.status();
    if (watts.value() <= 0.0) {
        return Status::failedPrecondition(
            "efficiency requires positive power");
    }
    return flops_per_sec / watts.value();
}

double
meanWattsOrEnergy(const std::vector<PowerSample> &samples,
                  const PmCounters &counters, double start_sec,
                  double end_sec)
{
    const Result<double> watts = meanWatts(samples);
    if (watts.isOk())
        return watts.value();
    logging::warn("SMI sample set empty over [", start_sec, ", ",
                  end_sec, ") s; falling back to pm_counters energy");
    return counters.averageWatts(start_sec, end_sec);
}

} // namespace smi
} // namespace mc
