/**
 * @file
 * The ROCm-SMI-equivalent power instrumentation.
 *
 * The paper measures power by polling rsmi_dev_power_ave_get() from a
 * background process at a 100 ms period, collecting at least 1000
 * samples per kernel, and cross-validating against the Cray pm_counters
 * energy accounting. This module reproduces both instruments against
 * the simulator's power trace:
 *  - PowerSensor::averagePower mimics the SMI's rolling-average sensor
 *    (a short hardware averaging window plus quantization);
 *  - PowerSampler walks simulated time at a fixed period and records
 *    samples;
 *  - energy integration over an interval stands in for pm_counters.
 */

#ifndef MC_SMI_SMI_HH
#define MC_SMI_SMI_HH

#include <vector>

#include "common/random.hh"
#include "common/status.hh"
#include "fault/injector.hh"
#include "sim/power.hh"

namespace mc {
namespace smi {

/** One power sample, as a polling loop would record it. */
struct PowerSample
{
    double timeSec = 0.0;
    double watts = 0.0;
};

/**
 * The package power sensor (rsmi_dev_power_ave_get equivalent).
 */
class PowerSensor
{
  public:
    /**
     * @param trace the package power trace to observe.
     * @param averaging_window_sec the hardware averaging window.
     * @param noise_watts sigma of the sensor's gaussian read noise.
     * @param seed noise stream seed.
     */
    explicit PowerSensor(const sim::PowerSource &trace,
                         double averaging_window_sec = 0.05,
                         double noise_watts = 1.5,
                         std::uint64_t seed = 0x7357);

    /**
     * Average power reported when polled at simulated time @p t: the
     * trace averaged over the trailing window, plus read noise,
     * quantized to the SMI's 1/256 W resolution.
     *
     * With a fault injector attached, a poll may return a *stale*
     * reading: the firmware hands back the previous value instead of
     * refreshing — a real rsmi failure mode under load.
     */
    double averagePower(double t);

    /** Attach @p faults (not owned, may be null) for stale-read injection. */
    void setFaultInjector(fault::Injector *faults) { _faults = faults; }

  private:
    const sim::PowerSource &_trace;
    double _windowSec;
    double _noiseWatts;
    Rng _rng;
    fault::Injector *_faults = nullptr;
    double _lastWatts = 0.0;
    bool _hasLast = false;
};

/**
 * A background sampling loop over simulated time.
 */
class PowerSampler
{
  public:
    /**
     * @param sensor the sensor to poll.
     * @param period_sec polling period (the paper uses 100 ms).
     */
    PowerSampler(PowerSensor &sensor, double period_sec = 0.1);

    /**
     * Poll over [start, end), one sample per period.
     *
     * With a fault injector attached, individual polls may be dropped
     * (the rsmi call fails and the loop records nothing for that
     * period) — with a high enough dropout rate over a short kernel
     * the sample set can come back empty, which is why the reductions
     * below return Result rather than asserting.
     */
    std::vector<PowerSample> sampleInterval(double start_sec,
                                            double end_sec);

    double periodSec() const { return _periodSec; }

    /** Attach @p faults (not owned, may be null) for dropped-poll injection. */
    void setFaultInjector(fault::Injector *faults) { _faults = faults; }

    /** Polls dropped by injection since construction. */
    std::uint64_t droppedPolls() const { return _droppedPolls; }

  private:
    PowerSensor &_sensor;
    double _periodSec;
    fault::Injector *_faults = nullptr;
    std::uint64_t _droppedPolls = 0;
};

/**
 * The Cray pm_counters-style energy accounting the paper uses to
 * cross-validate the SMI readings (its reference [17]): a free-running
 * accumulated-energy counter plus instantaneous power, as exposed by
 * the /sys/cray/pm_counters files on Cray EX nodes.
 */
class PmCounters
{
  public:
    /**
     * @param trace the package power trace to account.
     * @param update_period_sec counter refresh period (10 Hz on the
     *        real interface).
     */
    explicit PmCounters(const sim::PowerSource &trace,
                        double update_period_sec = 0.1);

    /**
     * Accumulated energy in joules at simulated time @p t, quantized
     * to the last counter update (monotonically non-decreasing).
     */
    double energyJoules(double t) const;

    /** Instantaneous power at the last update before @p t, watts. */
    double powerWatts(double t) const;

    /**
     * Average power over [start, end) derived from the energy counter
     * — the cross-check the paper performs against the SMI sampler.
     */
    double averageWatts(double start_sec, double end_sec) const;

  private:
    /** Quantize @p t down to the counter update grid. */
    double quantize(double t) const;

    const sim::PowerSource &_trace;
    double _periodSec;
};

/**
 * Mean of the sampled watts; Unavailable when the sample set is empty
 * (every poll dropped — degrade, don't die, per docs/RESILIENCE.md).
 */
Result<double> meanWatts(const std::vector<PowerSample> &samples);

/**
 * Power efficiency in FLOP/s per watt given delivered throughput and
 * samples (the paper's performance-per-watt metric). Unavailable when
 * @p samples is empty; FailedPrecondition when mean power is zero.
 */
Result<double> efficiencyFlopsPerWatt(
    double flops_per_sec, const std::vector<PowerSample> &samples);

/**
 * meanWatts with the paper's cross-instrument fallback: when the SMI
 * sample set is empty, derive average power from the pm_counters
 * energy accounting over [start, end) instead — the cross-validation
 * instrument doubling as a backup.
 */
double meanWattsOrEnergy(const std::vector<PowerSample> &samples,
                         const PmCounters &counters, double start_sec,
                         double end_sec);

} // namespace smi
} // namespace mc

#endif // MC_SMI_SMI_HH
