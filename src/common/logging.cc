#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mc {

namespace {

LogLevel g_level = LogLevel::Inform;
std::mutex g_log_mutex;

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        emit("info", msg);
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        emit("debug", msg);
}

} // namespace detail

} // namespace mc
