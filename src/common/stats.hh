/**
 * @file
 * Small statistics helpers used by the benchmark harnesses: summary
 * statistics over repeated measurements and ordinary least-squares linear
 * regression (used to fit the paper's Eq. 3 power model).
 */

#ifndef MC_COMMON_STATS_HH
#define MC_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace mc {

/** Summary statistics of a sample. */
struct SampleStats
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< sample standard deviation (n-1 denominator)
    double min = 0.0;
    double max = 0.0;

    /** Coefficient of variation (stddev / |mean|), 0 for empty/zero mean. */
    double relativeSpread() const;
};

/** Compute summary statistics; empty input yields a zeroed result. */
SampleStats summarize(const std::vector<double> &values);

/** Result of an ordinary least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0; ///< coefficient of determination

    /** Model prediction at @p x. */
    double predict(double x) const { return slope * x + intercept; }
};

/**
 * Least-squares fit of y against x.
 *
 * @pre xs.size() == ys.size() and xs.size() >= 2 with non-degenerate xs.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Percentile via linear interpolation; @p p in [0, 100]. */
double percentile(std::vector<double> values, double p);

/** Geometric mean; all values must be positive. */
double geometricMean(const std::vector<double> &values);

} // namespace mc

#endif // MC_COMMON_STATS_HH
