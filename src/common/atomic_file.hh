/**
 * @file
 * Durable, atomic file replacement.
 *
 * A result file that takes hours to produce must never be observed
 * half-written: a bench killed mid-emit (watchdog SIGKILL, OOM killer,
 * node reclaim) would otherwise leave a torn CSV that a later resume or
 * plotting step silently consumes. The helper here implements the
 * classic write-temp-then-rename protocol: the content is written to a
 * temporary file *in the same directory* as the target (rename(2) is
 * only atomic within a filesystem), flushed and fsync'd, and then
 * renamed over the destination. Readers see either the complete old
 * file or the complete new one — never a prefix.
 *
 * Durability contract: a returned Ok means the new content survives
 * not just a process crash but a *power loss*. That takes three
 * ordered syncs — the data fsync before the rename (content on stable
 * storage before it becomes reachable), the rename (atomic visibility
 * switch), and an fsync of the parent *directory* after the rename
 * (the directory entry itself is data that must reach stable storage;
 * without it a power cut can resurrect the old file). Manifests,
 * journals, and tune artifacts all rely on this: a resume decision
 * made from a manifest that later "un-happens" would silently skip
 * work.
 *
 * AtomicFileWriter buffers through an in-memory stream, so a crash at
 * any point before commit() leaves the target untouched; the only
 * residue possible is a stale `<target>.tmp.<pid>` from a kill inside
 * commit() itself, which a subsequent commit to the same target
 * overwrites.
 */

#ifndef MC_COMMON_ATOMIC_FILE_HH
#define MC_COMMON_ATOMIC_FILE_HH

#include <sstream>
#include <string>

#include "common/status.hh"

namespace mc {

/**
 * Atomically replace @p path with @p contents (temp file + fsync +
 * rename). Returns DataLoss when the temp file cannot be durably
 * written and InvalidArgument when the directory is unwritable.
 */
Status writeFileAtomic(const std::string &path, const std::string &contents);

/**
 * Stream-style front end to writeFileAtomic: accumulate output through
 * stream(), then commit() once. Destruction without commit() discards
 * the buffered content and leaves the target untouched.
 */
class AtomicFileWriter
{
  public:
    /** Prepare a writer targeting @p path; nothing touches disk yet. */
    explicit AtomicFileWriter(std::string path) : _path(std::move(path)) {}

    /** The in-memory output stream. */
    std::ostream &stream() { return _buffer; }

    /** Buffered bytes so far. */
    std::string contents() const { return _buffer.str(); }

    /**
     * Durably publish the buffered content at the target path. At most
     * one commit per writer.
     */
    Status commit();

    const std::string &path() const { return _path; }

  private:
    std::string _path;
    std::ostringstream _buffer;
    bool _committed = false;
};

} // namespace mc

#endif // MC_COMMON_ATOMIC_FILE_HH
