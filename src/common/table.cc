#include "table.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"

namespace mc {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers)),
      _alignment(_headers.size(), Align::Right)
{
    mc_assert(!_headers.empty(), "table requires at least one column");
}

void
TextTable::setAlignment(std::vector<Align> alignment)
{
    mc_assert(alignment.size() == _headers.size(),
              "alignment must cover every column");
    _alignment = std::move(alignment);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    mc_assert(cells.size() == _headers.size(),
              "row has ", cells.size(), " cells, expected ", _headers.size());
    Row row;
    row.cells = std::move(cells);
    _rows.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    Row row;
    row.separator = true;
    _rows.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const Row &row : _rows) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_cell = [&](const std::string &text, std::size_t c) {
        const std::size_t pad = widths[c] - text.size();
        if (_alignment[c] == Align::Right)
            os << std::string(pad, ' ') << text;
        else
            os << text << std::string(pad, ' ');
    };

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    if (!_title.empty())
        os << _title << "\n";

    print_rule();
    os << "|";
    for (std::size_t c = 0; c < _headers.size(); ++c) {
        os << ' ';
        print_cell(_headers[c], c);
        os << " |";
    }
    os << "\n";
    print_rule();

    for (const Row &row : _rows) {
        if (row.separator) {
            print_rule();
            continue;
        }
        os << "|";
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            os << ' ';
            print_cell(row.cells[c], c);
            os << " |";
        }
        os << "\n";
    }
    print_rule();
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace mc
