/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Benchmarks and tests need reproducible streams that are independent of
 * the standard library implementation, so we carry our own xoshiro256**
 * generator seeded through splitmix64 (the construction recommended by the
 * xoshiro authors).
 */

#ifndef MC_COMMON_RANDOM_HH
#define MC_COMMON_RANDOM_HH

#include <cstdint>

namespace mc {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the UniformRandomBitGenerator requirements, so it can be used
 * with <random> distributions as well.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Standard normal variate (Box-Muller). */
    double nextGaussian();

  private:
    std::uint64_t _state[4];
    bool _hasSpareGaussian = false;
    double _spareGaussian = 0.0;
};

} // namespace mc

#endif // MC_COMMON_RANDOM_HH
