/**
 * @file
 * Minimal CSV emission for benchmark series, so figure data can be
 * re-plotted outside the harness.
 */

#ifndef MC_COMMON_CSV_HH
#define MC_COMMON_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace mc {

/**
 * Row-oriented CSV writer with RFC 4180 quoting.
 */
class CsvWriter
{
  public:
    /** Create a writer emitting to @p os; the stream must outlive it. */
    explicit CsvWriter(std::ostream &os) : _os(os) {}

    /** Write a header or data row of pre-formatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience: write a row of doubles with full precision. */
    void writeNumericRow(const std::vector<double> &values);

  private:
    static std::string escape(const std::string &cell);

    std::ostream &_os;
};

} // namespace mc

#endif // MC_COMMON_CSV_HH
