#include "retry.hh"

#include <cmath>

namespace mc {

bool
RetryPolicy::retriable(ErrorCode code) const
{
    switch (code) {
      case ErrorCode::Unavailable:
      case ErrorCode::DeadlineExceeded:
      case ErrorCode::ResourceExhausted:
        return true;
      default:
        return false;
    }
}

double
RetryPolicy::backoffBeforeRetry(int retry) const
{
    mc_assert(retry >= 1, "retries are numbered from 1");
    const double raw =
        initialBackoffSec * std::pow(backoffMultiplier, retry - 1);
    return std::min(raw, maxBackoffSec);
}

} // namespace mc
