/**
 * @file
 * Minimal JSON document model for the suite run manifest.
 *
 * The supervisor (src/exec/supervisor.hh) records every bench's
 * command, attempts, and outcome in a JSON manifest so that humans,
 * external tooling, and a later --resume can all read one durable
 * artifact. The subset implemented here is exactly what that needs:
 * null/bool/number/string/array/object values, insertion-ordered
 * object keys (the manifest stays diffable), pretty-printed
 * serialization, and a strict recursive-descent parser for reading the
 * manifest back. Not a general-purpose JSON library — no comments, no
 * NaN/Infinity, numbers are doubles.
 */

#ifndef MC_COMMON_JSON_HH
#define MC_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace mc {

/** One JSON value; a tree of these is a document. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() : _type(Type::Null) {}
    JsonValue(bool value) : _type(Type::Bool), _bool(value) {}
    JsonValue(double value) : _type(Type::Number), _number(value) {}
    JsonValue(int value) : _type(Type::Number), _number(value) {}
    JsonValue(std::int64_t value)
        : _type(Type::Number), _number(static_cast<double>(value))
    {}
    JsonValue(std::string value)
        : _type(Type::String), _string(std::move(value))
    {}
    JsonValue(const char *value) : _type(Type::String), _string(value) {}

    static JsonValue
    array()
    {
        JsonValue v;
        v._type = Type::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v._type = Type::Object;
        return v;
    }

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isObject() const { return _type == Type::Object; }
    bool isArray() const { return _type == Type::Array; }

    /** Typed accessors; panic on type mismatch (validate first). */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() rounded to the nearest integer. */
    std::int64_t asInt() const;
    const std::string &asString() const;

    // ---- Arrays ----

    /** Append @p value (array values only). */
    void append(JsonValue value);

    /** Element count of an array or member count of an object. */
    std::size_t size() const;

    /** Array element @p index; panics when out of range. */
    const JsonValue &at(std::size_t index) const;
    JsonValue &at(std::size_t index);

    // ---- Objects ----

    /** Set member @p key, replacing an existing member in place. */
    void set(const std::string &key, JsonValue value);

    /** True when the object has a member @p key. */
    bool has(const std::string &key) const;

    /** Member @p key, or null when absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key; panics when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Members in insertion order (objects only). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    // ---- Serialization ----

    /**
     * Render the document. @p indent > 0 pretty-prints with that many
     * spaces per level; 0 emits one compact line.
     */
    std::string serialize(int indent = 2) const;

    /** Parse a complete JSON document (rejects trailing garbage). */
    static Result<JsonValue> parse(const std::string &text);

  private:
    void serializeTo(std::string &out, int indent, int depth) const;

    Type _type;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _elements;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

} // namespace mc

#endif // MC_COMMON_JSON_HH
