/**
 * @file
 * A tiny command-line flag parser for the bench and example binaries.
 *
 * Accepted syntax: --name=value, --name value, and bare --name for
 * booleans. Unknown flags are a fatal user error so typos do not silently
 * fall back to defaults.
 *
 * All usage errors — unknown flags, malformed values, and registered
 * range constraints (requireIntAtLeast / requirePositiveDouble) — are
 * reported uniformly as one `<prog>: error: ...` line on stderr
 * followed by exit(exit_code::Usage), so every binary in the suite
 * rejects bad invocations identically and the mc_suite supervisor can
 * classify them as InvalidArgument without retrying.
 */

#ifndef MC_COMMON_CLI_HH
#define MC_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mc {

/**
 * Install SIG_IGN for SIGPIPE (idempotent). Every tool and bench entry
 * point needs this: a reader that closes early — a client dropping its
 * socket, `mc_suite | head`, a dead log pipe — must surface as an
 * EPIPE write error the code can classify as Unavailable, not as
 * signal 13 killing the process mid-run. CliParser::parse calls it, so
 * any binary that parses flags is covered automatically.
 */
void ignoreSigpipe();

/**
 * Declarative flag registry plus parser.
 */
class CliParser
{
  public:
    /** Create a parser; @p program_summary is shown by --help. */
    explicit CliParser(std::string program_summary);

    /** Register flags before parse(). Defaults define the flag's type. */
    void addFlag(const std::string &name, bool default_value,
                 const std::string &help);
    void addFlag(const std::string &name, std::int64_t default_value,
                 const std::string &help);
    void addFlag(const std::string &name, double default_value,
                 const std::string &help);
    void addFlag(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Require the int flag @p name to be >= @p min; checked at the end
     * of parse() (defaults are validated too, so a bad default is
     * caught in testing rather than shipped).
     */
    void requireIntAtLeast(const std::string &name, std::int64_t min);

    /** Require the double flag @p name to be strictly positive. */
    void requirePositiveDouble(const std::string &name);

    /**
     * Parse argv. Exits with usage text on --help; usage errors
     * (unknown flags, malformed values, violated constraints) print
     * one error line and exit with exit_code::Usage.
     */
    void parse(int argc, const char *const *argv);

    bool getBool(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return _positional; }

    /** Render the --help text. */
    std::string usage() const;

  private:
    enum class FlagType { Bool, Int, Double, String };

    struct Flag
    {
        FlagType type;
        std::string help;
        bool boolValue = false;
        std::int64_t intValue = 0;
        double doubleValue = 0.0;
        std::string stringValue;
    };

    struct Constraint
    {
        std::string flagName;
        bool isDouble = false;
        std::int64_t minInt = 0; ///< for int flags: value must be >= this
    };

    const Flag &lookup(const std::string &name, FlagType type) const;
    void setFromString(Flag &flag, const std::string &name,
                       const std::string &text);
    [[noreturn]] void usageError(const std::string &message) const;
    void checkConstraints() const;

    std::string _summary;
    std::string _programName;
    std::map<std::string, Flag> _flags;
    std::vector<Constraint> _constraints;
    std::vector<std::string> _positional;
};

} // namespace mc

#endif // MC_COMMON_CLI_HH
