#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace mc {

bool
JsonValue::asBool() const
{
    mc_assert(_type == Type::Bool, "JSON value is not a bool");
    return _bool;
}

double
JsonValue::asNumber() const
{
    mc_assert(_type == Type::Number, "JSON value is not a number");
    return _number;
}

std::int64_t
JsonValue::asInt() const
{
    return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string &
JsonValue::asString() const
{
    mc_assert(_type == Type::String, "JSON value is not a string");
    return _string;
}

void
JsonValue::append(JsonValue value)
{
    mc_assert(_type == Type::Array, "append() on a non-array JSON value");
    _elements.push_back(std::move(value));
}

std::size_t
JsonValue::size() const
{
    if (_type == Type::Array)
        return _elements.size();
    if (_type == Type::Object)
        return _members.size();
    mc_panic("size() on a scalar JSON value");
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    mc_assert(_type == Type::Array, "at(index) on a non-array JSON value");
    mc_assert(index < _elements.size(), "JSON array index ", index,
              " out of range (size ", _elements.size(), ")");
    return _elements[index];
}

JsonValue &
JsonValue::at(std::size_t index)
{
    return const_cast<JsonValue &>(
        static_cast<const JsonValue *>(this)->at(index));
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    mc_assert(_type == Type::Object, "set() on a non-object JSON value");
    for (auto &[name, member] : _members) {
        if (name == key) {
            member = std::move(value);
            return;
        }
    }
    _members.emplace_back(key, std::move(value));
}

bool
JsonValue::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    for (const auto &[name, member] : _members) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *member = find(key);
    mc_assert(member, "JSON object has no member '", key, "'");
    return *member;
}

// ---- Serialization --------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, const std::string &text)
{
    out += '"';
    for (char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double value)
{
    // Integers render without a fraction so attempt counts and exit
    // codes stay readable; %.17g round-trips everything else.
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out += buf;
    }
}

void
appendNewlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::serializeTo(std::string &out, int indent, int depth) const
{
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, _number);
        break;
      case Type::String:
        appendEscaped(out, _string);
        break;
      case Type::Array:
        if (_elements.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _elements.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendNewlineIndent(out, indent, depth + 1);
            _elements[i].serializeTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (_members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < _members.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendNewlineIndent(out, indent, depth + 1);
            appendEscaped(out, _members[i].first);
            out += ": ";
            _members[i].second.serializeTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::serialize(int indent) const
{
    std::string out;
    serializeTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ---- Parsing --------------------------------------------------------------

namespace {

/** Recursive-descent parser state over the input text. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    Result<JsonValue>
    parseDocument()
    {
        JsonValue value;
        Status status = parseValue(value, 0);
        if (!status.isOk())
            return status;
        skipWhitespace();
        if (_pos != _text.size())
            return error("trailing characters after JSON document");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    error(const std::string &what) const
    {
        return Status::invalidArgument(
            "JSON parse error at offset " + std::to_string(_pos) + ": " +
            what);
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    consume(char ch)
    {
        if (_pos < _text.size() && _text[_pos] == ch) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t len = 0;
        while (literal[len])
            ++len;
        if (_text.compare(_pos, len, literal) != 0)
            return false;
        _pos += len;
        return true;
    }

    Status
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return error("nesting too deep");
        skipWhitespace();
        if (_pos >= _text.size())
            return error("unexpected end of input");
        switch (_text[_pos]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"': {
            std::string text;
            Status status = parseString(text);
            if (!status.isOk())
                return status;
            out = JsonValue(std::move(text));
            return Status::ok();
          }
          case 't':
            if (consumeLiteral("true")) {
                out = JsonValue(true);
                return Status::ok();
            }
            return error("invalid literal");
          case 'f':
            if (consumeLiteral("false")) {
                out = JsonValue(false);
                return Status::ok();
            }
            return error("invalid literal");
          case 'n':
            if (consumeLiteral("null")) {
                out = JsonValue();
                return Status::ok();
            }
            return error("invalid literal");
          default:
            return parseNumber(out);
        }
    }

    Status
    parseObject(JsonValue &out, int depth)
    {
        consume('{');
        out = JsonValue::object();
        skipWhitespace();
        if (consume('}'))
            return Status::ok();
        while (true) {
            skipWhitespace();
            std::string key;
            Status status = parseString(key);
            if (!status.isOk())
                return status;
            skipWhitespace();
            if (!consume(':'))
                return error("expected ':' after object key");
            JsonValue member;
            status = parseValue(member, depth + 1);
            if (!status.isOk())
                return status;
            out.set(key, std::move(member));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return error("expected ',' or '}' in object");
        }
    }

    Status
    parseArray(JsonValue &out, int depth)
    {
        consume('[');
        out = JsonValue::array();
        skipWhitespace();
        if (consume(']'))
            return Status::ok();
        while (true) {
            JsonValue element;
            Status status = parseValue(element, depth + 1);
            if (!status.isOk())
                return status;
            out.append(std::move(element));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return error("expected ',' or ']' in array");
        }
    }

    Status
    parseString(std::string &out)
    {
        if (!consume('"'))
            return error("expected '\"'");
        out.clear();
        while (_pos < _text.size()) {
            char ch = _text[_pos++];
            if (ch == '"')
                return Status::ok();
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (_pos >= _text.size())
                break;
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char hex = _text[_pos++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return error("invalid \\u escape");
                }
                // The manifest only ever escapes control bytes; other
                // code points pass through UTF-8 encoded as written.
                if (code > 0xff)
                    return error("\\u escape beyond latin-1 unsupported");
                out += static_cast<char>(code);
                break;
              }
              default:
                return error("invalid escape character");
            }
        }
        return error("unterminated string");
    }

    Status
    parseNumber(JsonValue &out)
    {
        const char *start = _text.c_str() + _pos;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return error("invalid number");
        _pos += static_cast<std::size_t>(end - start);
        out = JsonValue(value);
        return Status::ok();
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

Result<JsonValue>
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace mc
