#include "units.hh"

#include <cmath>
#include <cstdio>

namespace mc {
namespace units {

namespace {

std::string
formatScaled(double value, const char *unit, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", precision, value, unit);
    return buf;
}

} // namespace

std::string
formatFlops(double flops_per_sec, int precision)
{
    const double abs = std::fabs(flops_per_sec);
    if (abs >= tera)
        return formatScaled(flops_per_sec / tera, "TFLOPS", precision);
    if (abs >= giga)
        return formatScaled(flops_per_sec / giga, "GFLOPS", precision);
    if (abs >= mega)
        return formatScaled(flops_per_sec / mega, "MFLOPS", precision);
    return formatScaled(flops_per_sec, "FLOPS", precision);
}

std::string
formatWatts(double watts, int precision)
{
    return formatScaled(watts, "W", precision);
}

std::string
formatEfficiency(double flops_per_watt, int precision)
{
    // GFLOPS/W is the customary unit (the paper reports 1020 GFLOPS/W);
    // only switch to TFLOPS/W for values that would be unwieldy.
    const double abs = std::fabs(flops_per_watt);
    if (abs >= 10.0 * tera)
        return formatScaled(flops_per_watt / tera, "TFLOPS/W", precision);
    return formatScaled(flops_per_watt / giga, "GFLOPS/W", precision);
}

std::string
formatBytes(double bytes, int precision)
{
    const double abs = std::fabs(bytes);
    if (abs >= gibi)
        return formatScaled(bytes / gibi, "GiB", precision);
    if (abs >= mebi)
        return formatScaled(bytes / mebi, "MiB", precision);
    if (abs >= kibi)
        return formatScaled(bytes / kibi, "KiB", precision);
    return formatScaled(bytes, "B", precision);
}

std::string
formatSeconds(double seconds, int precision)
{
    const double abs = std::fabs(seconds);
    if (abs >= 1.0)
        return formatScaled(seconds, "s", precision);
    if (abs >= 1e-3)
        return formatScaled(seconds * 1e3, "ms", precision);
    if (abs >= 1e-6)
        return formatScaled(seconds * 1e6, "us", precision);
    return formatScaled(seconds * 1e9, "ns", precision);
}

std::string
formatHertz(double hertz, int precision)
{
    const double abs = std::fabs(hertz);
    if (abs >= giga)
        return formatScaled(hertz / giga, "GHz", precision);
    if (abs >= mega)
        return formatScaled(hertz / mega, "MHz", precision);
    return formatScaled(hertz, "Hz", precision);
}

} // namespace units
} // namespace mc
