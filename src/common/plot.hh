/**
 * @file
 * Terminal (ASCII) chart rendering for the figure benches, so the
 * reproduced curves can be eyeballed against the paper's plots without
 * leaving the terminal.
 */

#ifndef MC_COMMON_PLOT_HH
#define MC_COMMON_PLOT_HH

#include <ostream>
#include <string>
#include <vector>

namespace mc {

/** One named data series of an AsciiChart. */
struct PlotSeries
{
    std::string label;
    char marker = '*';
    /** (x, y) points; x values may differ between series. */
    std::vector<std::pair<double, double>> points;
};

/**
 * A scatter/line chart rendered with ASCII characters.
 *
 * The x axis can be linear or logarithmic (the paper's Fig. 3 and 6/7
 * use log-scaled x axes); the y axis is linear.
 */
class AsciiChart
{
  public:
    /**
     * @param width plot-area columns.
     * @param height plot-area rows.
     */
    AsciiChart(int width = 64, int height = 16);

    void setTitle(std::string title) { _title = std::move(title); }
    void setXLabel(std::string label) { _xLabel = std::move(label); }
    void setYLabel(std::string label) { _yLabel = std::move(label); }
    /** Use a log10 x axis (all x values must be positive). */
    void setLogX(bool log_x) { _logX = log_x; }

    /** Add a data series; empty series are ignored at render time. */
    void addSeries(PlotSeries series);

    /** Render the chart. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    int _width;
    int _height;
    bool _logX = false;
    std::string _title;
    std::string _xLabel;
    std::string _yLabel;
    std::vector<PlotSeries> _series;
};

} // namespace mc

#endif // MC_COMMON_PLOT_HH
