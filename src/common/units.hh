/**
 * @file
 * Unit helpers and formatting for the quantities the characterization
 * reports: floating-point throughput, power, energy, frequency, and bytes.
 *
 * Values are carried as plain doubles in SI base units (FLOP/s, Watt,
 * Joule, Hz, byte); these helpers only provide named constructors and
 * consistent formatting so "43 TFLOPS" means the same thing everywhere.
 */

#ifndef MC_COMMON_UNITS_HH
#define MC_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace mc {
namespace units {

// Decimal scale factors (throughput/power follow SI decimal prefixes).
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double tera = 1e12;

// Binary scale factors (memory capacities follow IEC binary prefixes).
inline constexpr double kibi = 1024.0;
inline constexpr double mebi = 1024.0 * 1024.0;
inline constexpr double gibi = 1024.0 * 1024.0 * 1024.0;

/** FLOP/s from a TFLOPS figure. */
constexpr double tflops(double v) { return v * tera; }
/** FLOP/s from a GFLOPS figure. */
constexpr double gflops(double v) { return v * giga; }
/** Hz from a MHz figure. */
constexpr double megahertz(double v) { return v * mega; }
/** Hz from a GHz figure. */
constexpr double gigahertz(double v) { return v * giga; }
/** Bytes from a GiB figure. */
constexpr double gibibytes(double v) { return v * gibi; }
/** Bytes/s from a GB/s figure. */
constexpr double gbPerSec(double v) { return v * giga; }
/** Bytes/s from a TB/s figure. */
constexpr double tbPerSec(double v) { return v * tera; }

/** FLOP/s -> TFLOPS. */
constexpr double toTflops(double flops_per_sec) { return flops_per_sec / tera; }
/** FLOP/s -> GFLOPS. */
constexpr double toGflops(double flops_per_sec) { return flops_per_sec / giga; }

/** Format a throughput as e.g. "42.7 TFLOPS". */
std::string formatFlops(double flops_per_sec, int precision = 1);

/** Format a power as e.g. "318.5 W". */
std::string formatWatts(double watts, int precision = 1);

/** Format an efficiency as e.g. "1020 GFLOPS/W". */
std::string formatEfficiency(double flops_per_watt, int precision = 0);

/** Format a byte count with a binary prefix, e.g. "64.0 GiB". */
std::string formatBytes(double bytes, int precision = 1);

/** Format a duration in seconds with an adaptive unit (s, ms, us, ns). */
std::string formatSeconds(double seconds, int precision = 2);

/** Format a frequency, e.g. "1.70 GHz". */
std::string formatHertz(double hertz, int precision = 2);

} // namespace units
} // namespace mc

#endif // MC_COMMON_UNITS_HH
