#include "cli.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "logging.hh"
#include "status.hh"

namespace mc {

void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

CliParser::CliParser(std::string program_summary)
    : _summary(std::move(program_summary))
{
    addFlag("help", false, "show this help text and exit");
}

void
CliParser::addFlag(const std::string &name, bool default_value,
                   const std::string &help)
{
    Flag flag;
    flag.type = FlagType::Bool;
    flag.help = help;
    flag.boolValue = default_value;
    _flags[name] = std::move(flag);
}

void
CliParser::addFlag(const std::string &name, std::int64_t default_value,
                   const std::string &help)
{
    Flag flag;
    flag.type = FlagType::Int;
    flag.help = help;
    flag.intValue = default_value;
    _flags[name] = std::move(flag);
}

void
CliParser::addFlag(const std::string &name, double default_value,
                   const std::string &help)
{
    Flag flag;
    flag.type = FlagType::Double;
    flag.help = help;
    flag.doubleValue = default_value;
    _flags[name] = std::move(flag);
}

void
CliParser::addFlag(const std::string &name, const std::string &default_value,
                   const std::string &help)
{
    Flag flag;
    flag.type = FlagType::String;
    flag.help = help;
    flag.stringValue = default_value;
    _flags[name] = std::move(flag);
}

void
CliParser::usageError(const std::string &message) const
{
    const std::string prog =
        _programName.empty() ? "prog" : _programName;
    std::fprintf(stderr, "%s: error: %s (try --help)\n", prog.c_str(),
                 message.c_str());
    std::exit(exit_code::Usage);
}

void
CliParser::requireIntAtLeast(const std::string &name, std::int64_t min)
{
    mc_assert(_flags.count(name) && _flags.at(name).type == FlagType::Int,
              "constraint on unregistered or non-int flag --", name);
    _constraints.push_back({name, false, min});
}

void
CliParser::requirePositiveDouble(const std::string &name)
{
    mc_assert(_flags.count(name) &&
                  _flags.at(name).type == FlagType::Double,
              "constraint on unregistered or non-double flag --", name);
    _constraints.push_back({name, true, 0});
}

void
CliParser::checkConstraints() const
{
    for (const Constraint &constraint : _constraints) {
        const Flag &flag = _flags.at(constraint.flagName);
        if (constraint.isDouble) {
            if (flag.doubleValue <= 0.0) {
                std::ostringstream os;
                os << "--" << constraint.flagName
                   << " must be positive, got " << flag.doubleValue;
                usageError(os.str());
            }
        } else if (flag.intValue < constraint.minInt) {
            std::ostringstream os;
            os << "--" << constraint.flagName << " must be >= "
               << constraint.minInt << ", got " << flag.intValue;
            usageError(os.str());
        }
    }
}

void
CliParser::setFromString(Flag &flag, const std::string &name,
                         const std::string &text)
{
    switch (flag.type) {
      case FlagType::Bool:
        if (text == "true" || text == "1") {
            flag.boolValue = true;
        } else if (text == "false" || text == "0") {
            flag.boolValue = false;
        } else {
            usageError("flag --" + name + " expects a boolean, got '" +
                       text + "'");
        }
        break;
      case FlagType::Int: {
        char *end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0') {
            usageError("flag --" + name + " expects an integer, got '" +
                       text + "'");
        }
        flag.intValue = v;
        break;
      }
      case FlagType::Double: {
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0') {
            usageError("flag --" + name + " expects a number, got '" +
                       text + "'");
        }
        flag.doubleValue = v;
        break;
      }
      case FlagType::String:
        flag.stringValue = text;
        break;
    }
}

void
CliParser::parse(int argc, const char *const *argv)
{
    // Every flag-parsing binary gets the SIGPIPE protection: an
    // early-closing reader becomes a classifiable EPIPE, never a
    // signal-13 death (docs/RESILIENCE.md).
    ignoreSigpipe();
    _programName = argc > 0 ? argv[0] : "prog";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }

        auto it = _flags.find(name);
        if (it == _flags.end())
            usageError("unknown flag --" + name);
        Flag &flag = it->second;

        if (!has_value) {
            if (flag.type == FlagType::Bool) {
                flag.boolValue = true;
                continue;
            }
            if (i + 1 >= argc)
                usageError("flag --" + name + " requires a value");
            value = argv[++i];
        }
        setFromString(flag, name, value);
    }

    if (getBool("help")) {
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
    }
    checkConstraints();
}

const CliParser::Flag &
CliParser::lookup(const std::string &name, FlagType type) const
{
    auto it = _flags.find(name);
    mc_assert(it != _flags.end(), "flag --", name, " was never registered");
    mc_assert(it->second.type == type, "flag --", name,
              " accessed with the wrong type");
    return it->second;
}

bool
CliParser::getBool(const std::string &name) const
{
    return lookup(name, FlagType::Bool).boolValue;
}

std::int64_t
CliParser::getInt(const std::string &name) const
{
    return lookup(name, FlagType::Int).intValue;
}

double
CliParser::getDouble(const std::string &name) const
{
    return lookup(name, FlagType::Double).doubleValue;
}

const std::string &
CliParser::getString(const std::string &name) const
{
    return lookup(name, FlagType::String).stringValue;
}

std::string
CliParser::usage() const
{
    std::ostringstream os;
    os << _summary << "\n\nusage: " << _programName << " [flags]\n\nflags:\n";
    for (const auto &[name, flag] : _flags) {
        os << "  --" << name;
        switch (flag.type) {
          case FlagType::Bool:
            os << " (bool, default "
               << (flag.boolValue ? "true" : "false") << ")";
            break;
          case FlagType::Int:
            os << " (int, default " << flag.intValue << ")";
            break;
          case FlagType::Double:
            os << " (double, default " << flag.doubleValue << ")";
            break;
          case FlagType::String:
            os << " (string, default '" << flag.stringValue << "')";
            break;
        }
        os << "\n      " << flag.help << "\n";
    }
    return os.str();
}

} // namespace mc
