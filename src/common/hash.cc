#include "hash.hh"

namespace mc {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    // Mix the value first so runs of small integers (dimensions, flags)
    // still flip high bits of the state.
    return mix64(seed ^ mix64(value));
}

std::uint64_t
hashBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
hashString(std::string_view text, std::uint64_t seed)
{
    return hashBytes(text.data(), text.size(), seed);
}

namespace {

/**
 * Slice-by-8 CRC-32 tables for the reflected polynomial. Table 0 is
 * the classic byte-indexed table (used for the tail); tables 1..7
 * carry each byte's contribution forward by one extra zero byte, so
 * eight input bytes fold into the state with eight independent table
 * lookups per iteration instead of an eight-step serial chain. The
 * checksum values are identical to the byte-at-a-time formulation.
 */
struct Crc32Tables
{
    std::uint32_t entries[8][256];

    constexpr Crc32Tables() : entries{}
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
            entries[0][i] = c;
        }
        for (std::size_t t = 1; t < 8; ++t)
            for (std::uint32_t i = 0; i < 256; ++i)
                entries[t][i] = entries[0][entries[t - 1][i] & 0xffu] ^
                                (entries[t - 1][i] >> 8);
    }
};

constexpr Crc32Tables kCrc32;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t crc)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xffffffffu;
    while (size >= 8) {
        // Explicit little-endian assembly keeps the result independent
        // of host byte order; compilers fold these into two loads.
        const std::uint32_t lo =
            c ^ (std::uint32_t(bytes[0]) | (std::uint32_t(bytes[1]) << 8) |
                 (std::uint32_t(bytes[2]) << 16) |
                 (std::uint32_t(bytes[3]) << 24));
        const std::uint32_t hi =
            std::uint32_t(bytes[4]) | (std::uint32_t(bytes[5]) << 8) |
            (std::uint32_t(bytes[6]) << 16) | (std::uint32_t(bytes[7]) << 24);
        c = kCrc32.entries[7][lo & 0xffu] ^
            kCrc32.entries[6][(lo >> 8) & 0xffu] ^
            kCrc32.entries[5][(lo >> 16) & 0xffu] ^
            kCrc32.entries[4][lo >> 24] ^ kCrc32.entries[3][hi & 0xffu] ^
            kCrc32.entries[2][(hi >> 8) & 0xffu] ^
            kCrc32.entries[1][(hi >> 16) & 0xffu] ^
            kCrc32.entries[0][hi >> 24];
        bytes += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        c = kCrc32.entries[0][(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32String(std::string_view text, std::uint32_t crc)
{
    return crc32(text.data(), text.size(), crc);
}

} // namespace mc
