#include "hash.hh"

namespace mc {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    // Mix the value first so runs of small integers (dimensions, flags)
    // still flip high bits of the state.
    return mix64(seed ^ mix64(value));
}

std::uint64_t
hashBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
hashString(std::string_view text, std::uint64_t seed)
{
    return hashBytes(text.data(), text.size(), seed);
}

namespace {

/** Byte-indexed CRC-32 table for the reflected polynomial. */
struct Crc32Table
{
    std::uint32_t entries[256];

    constexpr Crc32Table() : entries{}
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
            entries[i] = c;
        }
    }
};

constexpr Crc32Table kCrc32Table;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t crc)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = kCrc32Table.entries[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32String(std::string_view text, std::uint32_t crc)
{
    return crc32(text.data(), text.size(), crc);
}

} // namespace mc
