/**
 * @file
 * Status-message and error-handling primitives, modelled on gem5's
 * logging conventions.
 *
 * Severity semantics follow gem5:
 *   - panic(): an internal invariant was violated (a bug in this library);
 *     aborts so a debugger or core dump can capture the state.
 *   - fatal(): the simulation cannot continue because of a user error
 *     (bad configuration, invalid arguments); exits with status 1.
 *   - warn(): something is suspicious but execution can continue.
 *   - inform(): plain status output.
 */

#ifndef MC_COMMON_LOGGING_HH
#define MC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace mc {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global verbosity; messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a mixed argument pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    // void-cast: with an empty pack the fold collapses to plain `os`.
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

} // namespace detail

/** Report and abort on an internal library bug. */
#define mc_panic(...) \
    ::mc::detail::panicImpl(__FILE__, __LINE__, ::mc::detail::concat(__VA_ARGS__))

/** Report a non-recoverable user error and exit. */
#define mc_fatal(...) \
    ::mc::detail::fatalImpl(__FILE__, __LINE__, ::mc::detail::concat(__VA_ARGS__))

namespace logging {

/** Emit a warning message (level Warn). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational message (level Inform). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a debug message (level Debug). */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace logging

/**
 * Assert an internal invariant; compiled in all build types because the
 * simulator's correctness guarantees depend on it.
 */
#define mc_assert(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::mc::detail::panicImpl(__FILE__, __LINE__,                       \
                ::mc::detail::concat("assertion failed: " #cond " ",         \
                                     ##__VA_ARGS__));                         \
        }                                                                     \
    } while (0)

} // namespace mc

#endif // MC_COMMON_LOGGING_HH
