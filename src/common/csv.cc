#include "csv.hh"

#include <cstdio>

namespace mc {

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            _os << ',';
        _os << escape(cells[i]);
    }
    _os << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        cells.emplace_back(buf);
    }
    writeRow(cells);
}

} // namespace mc
