#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace mc {

double
SampleStats::relativeSpread() const
{
    if (count == 0 || mean == 0.0)
        return 0.0;
    return stddev / std::fabs(mean);
}

SampleStats
summarize(const std::vector<double> &values)
{
    SampleStats out;
    out.count = values.size();
    if (values.empty())
        return out;

    double sum = 0.0;
    out.min = values.front();
    out.max = values.front();
    for (double v : values) {
        sum += v;
        out.min = std::min(out.min, v);
        out.max = std::max(out.max, v);
    }
    out.mean = sum / static_cast<double>(values.size());

    if (values.size() > 1) {
        double ss = 0.0;
        for (double v : values) {
            const double d = v - out.mean;
            ss += d * d;
        }
        out.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
    }
    return out;
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    mc_assert(xs.size() == ys.size(), "fitLinear requires equal-length series");
    mc_assert(xs.size() >= 2, "fitLinear requires at least two points");

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    mc_assert(sxx > 0.0, "fitLinear requires non-degenerate x values");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    return fit;
}

double
percentile(std::vector<double> values, double p)
{
    mc_assert(!values.empty(), "percentile of an empty sample");
    mc_assert(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
geometricMean(const std::vector<double> &values)
{
    mc_assert(!values.empty(), "geometricMean of an empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        mc_assert(v > 0.0, "geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace mc
