/**
 * @file
 * Bounded retry with deterministic simulated-time backoff.
 *
 * Long unattended measurement campaigns survive transient faults —
 * sensor dropouts, allocation hiccups, flaky runtime calls — by
 * retrying a bounded number of times. Because this suite runs against
 * a simulator, backoff is *simulated* time: the policy reports how
 * long the caller should advance the device timeline between attempts
 * instead of sleeping, so retries cost microseconds of wall clock and
 * reproduce identically on every run.
 */

#ifndef MC_COMMON_RETRY_HH
#define MC_COMMON_RETRY_HH

#include <algorithm>

#include "common/logging.hh"
#include "common/status.hh"

namespace mc {

/**
 * When and how often to retry a failed operation.
 */
struct RetryPolicy
{
    /** Total attempts, including the first; must be >= 1. */
    int maxAttempts = 3;

    /** Simulated-time backoff before the first retry, seconds. */
    double initialBackoffSec = 0.05;

    /** Backoff growth factor per retry (exponential). */
    double backoffMultiplier = 2.0;

    /** Backoff ceiling, seconds. */
    double maxBackoffSec = 5.0;

    /** A policy that never retries. */
    static RetryPolicy
    none()
    {
        RetryPolicy policy;
        policy.maxAttempts = 1;
        return policy;
    }

    /**
     * True when @p code is worth retrying: transient conditions
     * (Unavailable, DeadlineExceeded, ResourceExhausted). Permanent
     * conditions — InvalidArgument, OutOfMemory capacity exhaustion,
     * DataLoss — are not.
     */
    bool retriable(ErrorCode code) const;

    /**
     * Simulated backoff before retry number @p retry (1-based):
     * initialBackoffSec * backoffMultiplier^(retry-1), capped at
     * maxBackoffSec. Deterministic — no jitter, so a retried sweep
     * point reproduces byte-identically.
     */
    double backoffBeforeRetry(int retry) const;
};

namespace detail {

/** Status of either a Status or a Result<T> return value. */
inline const Status &
statusOf(const Status &status)
{
    return status;
}

template <typename T>
const Status &
statusOf(const Result<T> &result)
{
    return result.status();
}

} // namespace detail

/**
 * Invoke @p fn (returning Status or Result<T>) under @p policy.
 *
 * Retries while the returned status is retriable and attempts remain;
 * exhaustion of the retry budget returns the *last* error observed.
 * The simulated backoff spent between attempts accumulates into
 * @p backoff_sec_out (when non-null) so the caller can advance its
 * simulated clock or charge a deadline.
 */
template <typename Fn>
auto
retryCall(const RetryPolicy &policy, Fn &&fn,
          double *backoff_sec_out = nullptr) -> decltype(fn())
{
    mc_assert(policy.maxAttempts >= 1,
              "retry policy needs at least one attempt");
    double backoff = 0.0;
    for (int attempt = 1;; ++attempt) {
        auto result = fn();
        const Status &status = detail::statusOf(result);
        if (status.isOk() || attempt >= policy.maxAttempts ||
            !policy.retriable(status.code())) {
            if (backoff_sec_out)
                *backoff_sec_out = backoff;
            return result;
        }
        backoff += policy.backoffBeforeRetry(attempt);
    }
}

/**
 * retryCall with a simulated-time budget: @p budget_sec bounds the
 * total backoff this call may accumulate. When a retry's backoff would
 * push the accumulated total past the budget, the call gives up *before
 * charging that backoff* and returns DeadlineExceeded — a deadline that
 * expires between retries must never be slept past (the caller would
 * otherwise blow its point deadline by up to maxBackoffSec and then
 * report the underlying transient error instead of the deadline).
 *
 * @p backoff_sec_out receives only the backoff actually charged, so a
 * deadline-bounded caller's clock never advances beyond its budget.
 */
template <typename Fn>
auto
retryCallWithin(const RetryPolicy &policy, double budget_sec, Fn &&fn,
                double *backoff_sec_out = nullptr) -> decltype(fn())
{
    mc_assert(policy.maxAttempts >= 1,
              "retry policy needs at least one attempt");
    double backoff = 0.0;
    for (int attempt = 1;; ++attempt) {
        auto result = fn();
        const Status &status = detail::statusOf(result);
        if (status.isOk() || attempt >= policy.maxAttempts ||
            !policy.retriable(status.code())) {
            if (backoff_sec_out)
                *backoff_sec_out = backoff;
            return result;
        }
        const double next = policy.backoffBeforeRetry(attempt);
        if (backoff + next > budget_sec) {
            if (backoff_sec_out)
                *backoff_sec_out = backoff;
            return Status::deadlineExceeded(
                "retry backoff would exceed the remaining deadline "
                "budget");
        }
        backoff += next;
    }
}

} // namespace mc

#endif // MC_COMMON_RETRY_HH
