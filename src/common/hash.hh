/**
 * @file
 * Deterministic, platform-independent 64-bit hashing.
 *
 * The sweep engine derives per-point noise seeds from (bench name,
 * point key, repetition) and the GEMM plan cache fingerprints
 * calibrations, so both need a stable hash that never changes between
 * runs, build types, or standard-library implementations (std::hash
 * guarantees none of that). FNV-1a over bytes plus the splitmix64
 * finalizer for mixing.
 */

#ifndef MC_COMMON_HASH_HH
#define MC_COMMON_HASH_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mc {

/** FNV-1a offset basis (the conventional 64-bit starting state). */
inline constexpr std::uint64_t kHashBasis = 0xcbf29ce484222325ull;

/** splitmix64 finalizer: a strong avalanche over one 64-bit word. */
std::uint64_t mix64(std::uint64_t x);

/** Fold @p value into @p seed (order-dependent). */
std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value);

/** FNV-1a over a byte range, continuing from @p seed. */
std::uint64_t hashBytes(const void *data, std::size_t size,
                        std::uint64_t seed = kHashBasis);

/** FNV-1a over the characters of @p text, continuing from @p seed. */
std::uint64_t hashString(std::string_view text,
                         std::uint64_t seed = kHashBasis);

/** Hash a double by bit pattern (distinguishes +0.0 / -0.0; NaNs by payload). */
inline std::uint64_t
hashDouble(std::uint64_t seed, double value)
{
    return hashCombine(seed, std::bit_cast<std::uint64_t>(value));
}

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
 * range. Unlike the FNV/splitmix hashes above — which are for seeding
 * and fingerprinting — this is the conventional checksum format, so
 * persisted records (sweep journals) can be validated by external
 * tooling. Pass a previous return value as @p crc to checksum data in
 * chunks.
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t crc = 0);

/** crc32 over the characters of @p text. */
std::uint32_t crc32String(std::string_view text, std::uint32_t crc = 0);

} // namespace mc

#endif // MC_COMMON_HASH_HH
