#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace mc {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    mc_assert(bound != 0, "nextBelow requires a nonzero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextGaussian()
{
    if (_hasSpareGaussian) {
        _hasSpareGaussian = false;
        return _spareGaussian;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    _spareGaussian = v * mul;
    _hasSpareGaussian = true;
    return u * mul;
}

} // namespace mc
