/**
 * @file
 * A minimal dense row-major matrix container used by the functional
 * executor, the reference BLAS, and the tests.
 */

#ifndef MC_COMMON_MATRIX_HH
#define MC_COMMON_MATRIX_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace mc {

/**
 * Dense row-major matrix.
 *
 * @tparam T element storage type.
 */
template <typename T>
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() : _rows(0), _cols(0) {}

    /** Matrix of @p rows x @p cols, value-initialized elements. */
    Matrix(std::size_t rows, std::size_t cols)
        : _rows(rows), _cols(cols), _data(rows * cols)
    {}

    /** Matrix filled with @p init. */
    Matrix(std::size_t rows, std::size_t cols, T init)
        : _rows(rows), _cols(cols), _data(rows * cols, init)
    {}

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    std::size_t size() const { return _data.size(); }

    T *data() { return _data.data(); }
    const T *data() const { return _data.data(); }

    T &
    operator()(std::size_t r, std::size_t c)
    {
        mc_assert(r < _rows && c < _cols, "matrix index (", r, ",", c,
                  ") out of bounds for ", _rows, "x", _cols);
        return _data[r * _cols + c];
    }

    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        mc_assert(r < _rows && c < _cols, "matrix index (", r, ",", c,
                  ") out of bounds for ", _rows, "x", _cols);
        return _data[r * _cols + c];
    }

    /** Set every element to @p value. */
    void
    fill(T value)
    {
        for (auto &e : _data)
            e = value;
    }

    /** Identity-like fill: ones on the diagonal, zeros elsewhere. */
    void
    setIdentity()
    {
        fill(T(0.0f));
        const std::size_t n = _rows < _cols ? _rows : _cols;
        for (std::size_t i = 0; i < n; ++i)
            (*this)(i, i) = T(1.0f);
    }

    bool
    sameShape(const Matrix &other) const
    {
        return _rows == other._rows && _cols == other._cols;
    }

  private:
    std::size_t _rows;
    std::size_t _cols;
    std::vector<T> _data;
};

} // namespace mc

#endif // MC_COMMON_MATRIX_HH
