/**
 * @file
 * Error propagation types used across the library.
 *
 * Recoverable failures — user-visible configuration errors the caller can
 * react to — are returned as Status / Result values rather than thrown, so
 * the public API stays usable from exception-free code. Internal bugs still
 * use mc_panic.
 */

#ifndef MC_COMMON_STATUS_HH
#define MC_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "logging.hh"

namespace mc {

/** Machine-inspectable error category. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,    ///< caller passed a value outside the accepted domain
    Unsupported,        ///< the operation is valid but this target lacks it
    OutOfMemory,        ///< simulated device memory exhausted
    ResourceExhausted,  ///< non-memory resource limit hit (slots, streams)
    NotFound,           ///< lookup failed (instruction, counter, device)
    FailedPrecondition, ///< object is not in the state the call requires
    Internal,           ///< invariant violation surfaced as a status
    Unavailable,        ///< transient failure; retrying may succeed
    DeadlineExceeded,   ///< the operation overran its time budget
    DataLoss,           ///< data was corrupted or lost (e.g. fatal ECC)
};

/** Human-readable name for an ErrorCode. */
const char *errorCodeName(ErrorCode code);

/**
 * Process exit codes shared by every bench binary and the mc_suite
 * supervisor, so a parent process can classify a child's outcome
 * without parsing its output (docs/RESILIENCE.md).
 */
namespace exit_code {

inline constexpr int Ok = 0;              ///< completed successfully
inline constexpr int Failure = 1;         ///< generic failure (mc_fatal)
inline constexpr int Usage = 2;           ///< CLI usage error
inline constexpr int BudgetExhausted = 3; ///< point-failure budget hit
inline constexpr int DataLossExit = 4;    ///< output could not be persisted
inline constexpr int ExecFailed = 127;    ///< exec(2) of the binary failed

} // namespace exit_code

/** The exit code a bench should return for a final status @p code. */
int exitCodeFor(ErrorCode code);

/**
 * Inverse mapping used by the supervisor: the ErrorCode implied by a
 * child's exit code (Ok for 0, InvalidArgument for usage errors, ...).
 */
ErrorCode errorCodeForExitStatus(int exit_status);

/**
 * Inverse of errorCodeName (used when decoding persisted journals).
 * Returns false and leaves @p out untouched for unknown names.
 */
bool errorCodeFromName(std::string_view name, ErrorCode &out);

/**
 * Success-or-error result of an operation, carrying a message on failure.
 */
class Status
{
  public:
    /** Construct a success status. */
    Status() : _code(ErrorCode::Ok) {}

    /** Construct a failure status with a diagnostic message. */
    Status(ErrorCode code, std::string message)
        : _code(code), _message(std::move(message))
    {
        mc_assert(code != ErrorCode::Ok, "error status requires nonzero code");
    }

    static Status ok() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(ErrorCode::InvalidArgument, std::move(msg));
    }

    static Status
    unsupported(std::string msg)
    {
        return Status(ErrorCode::Unsupported, std::move(msg));
    }

    static Status
    outOfMemory(std::string msg)
    {
        return Status(ErrorCode::OutOfMemory, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(ErrorCode::ResourceExhausted, std::move(msg));
    }

    static Status
    notFound(std::string msg)
    {
        return Status(ErrorCode::NotFound, std::move(msg));
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return Status(ErrorCode::FailedPrecondition, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(ErrorCode::Internal, std::move(msg));
    }

    static Status
    unavailable(std::string msg)
    {
        return Status(ErrorCode::Unavailable, std::move(msg));
    }

    static Status
    deadlineExceeded(std::string msg)
    {
        return Status(ErrorCode::DeadlineExceeded, std::move(msg));
    }

    static Status
    dataLoss(std::string msg)
    {
        return Status(ErrorCode::DataLoss, std::move(msg));
    }

    bool isOk() const { return _code == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /** "ok" or "<code>: <message>". */
    std::string toString() const;

  private:
    ErrorCode _code;
    std::string _message;
};

/**
 * A value or a Status error.
 *
 * @tparam T the success payload type.
 */
template <typename T>
class Result
{
  public:
    /** Construct a successful result. */
    Result(T value) : _value(std::move(value)) {}

    /** Construct a failed result; @p status must not be ok. */
    Result(Status status) : _status(std::move(status))
    {
        mc_assert(!_status.isOk(), "Result error requires a non-ok status");
    }

    bool isOk() const { return _status.isOk(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return _status; }

    /** Access the payload; panics if the result holds an error. */
    const T &
    value() const
    {
        mc_assert(_value.has_value(), "value() on error Result: ",
                  _status.toString());
        return *_value;
    }

    T &
    value()
    {
        mc_assert(_value.has_value(), "value() on error Result: ",
                  _status.toString());
        return *_value;
    }

    /** Move the payload out; panics if the result holds an error. */
    T
    take()
    {
        mc_assert(_value.has_value(), "take() on error Result: ",
                  _status.toString());
        return std::move(*_value);
    }

  private:
    Status _status;
    std::optional<T> _value;
};

} // namespace mc

#endif // MC_COMMON_STATUS_HH
