/**
 * @file
 * Plain-text table rendering for benchmark output.
 *
 * Each per-figure/per-table bench binary prints the rows the paper
 * reports; this formatter keeps the output aligned and diff-friendly.
 */

#ifndef MC_COMMON_TABLE_HH
#define MC_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mc {

/** Column alignment for TextTable. */
enum class Align
{
    Left,
    Right,
};

/**
 * An aligned text table with a header row and optional title.
 *
 * Numeric cells should be pre-formatted by the caller (typically via the
 * units:: helpers) so the table stays unit-aware.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title) { _title = std::move(title); }

    /** Per-column alignment; defaults to Right for every column. */
    void setAlignment(std::vector<Align> alignment);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    std::size_t numRows() const { return _rows.size(); }

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::string _title;
    std::vector<std::string> _headers;
    std::vector<Align> _alignment;
    std::vector<Row> _rows;
};

} // namespace mc

#endif // MC_COMMON_TABLE_HH
