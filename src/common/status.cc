#include "status.hh"

namespace mc {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::Unsupported: return "Unsupported";
      case ErrorCode::OutOfMemory: return "OutOfMemory";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::NotFound: return "NotFound";
      case ErrorCode::FailedPrecondition: return "FailedPrecondition";
      case ErrorCode::Internal: return "Internal";
      case ErrorCode::Unavailable: return "Unavailable";
      case ErrorCode::DeadlineExceeded: return "DeadlineExceeded";
      case ErrorCode::DataLoss: return "DataLoss";
    }
    return "Unknown";
}

bool
errorCodeFromName(std::string_view name, ErrorCode &out)
{
    static constexpr ErrorCode codes[] = {
        ErrorCode::Ok,
        ErrorCode::InvalidArgument,
        ErrorCode::Unsupported,
        ErrorCode::OutOfMemory,
        ErrorCode::ResourceExhausted,
        ErrorCode::NotFound,
        ErrorCode::FailedPrecondition,
        ErrorCode::Internal,
        ErrorCode::Unavailable,
        ErrorCode::DeadlineExceeded,
        ErrorCode::DataLoss,
    };
    for (ErrorCode code : codes) {
        if (name == errorCodeName(code)) {
            out = code;
            return true;
        }
    }
    return false;
}

int
exitCodeFor(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return exit_code::Ok;
      case ErrorCode::InvalidArgument:
      case ErrorCode::Unsupported:
        return exit_code::Usage;
      case ErrorCode::ResourceExhausted:
        return exit_code::BudgetExhausted;
      case ErrorCode::DataLoss:
        return exit_code::DataLossExit;
      default:
        return exit_code::Failure;
    }
}

ErrorCode
errorCodeForExitStatus(int exit_status)
{
    switch (exit_status) {
      case exit_code::Ok:
        return ErrorCode::Ok;
      case exit_code::Usage:
        return ErrorCode::InvalidArgument;
      case exit_code::BudgetExhausted:
        return ErrorCode::ResourceExhausted;
      case exit_code::DataLossExit:
        return ErrorCode::DataLoss;
      case exit_code::ExecFailed:
        return ErrorCode::NotFound;
      default:
        return ErrorCode::Internal;
    }
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    std::string out = errorCodeName(_code);
    out += ": ";
    out += _message;
    return out;
}

} // namespace mc
