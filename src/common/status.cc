#include "status.hh"

namespace mc {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::Unsupported: return "Unsupported";
      case ErrorCode::OutOfMemory: return "OutOfMemory";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::NotFound: return "NotFound";
      case ErrorCode::FailedPrecondition: return "FailedPrecondition";
      case ErrorCode::Internal: return "Internal";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    std::string out = errorCodeName(_code);
    out += ": ";
    out += _message;
    return out;
}

} // namespace mc
