#include "plot.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace mc {

AsciiChart::AsciiChart(int width, int height)
    : _width(width), _height(height)
{
    mc_assert(width >= 16 && height >= 4,
              "chart area too small to render");
}

void
AsciiChart::addSeries(PlotSeries series)
{
    _series.push_back(std::move(series));
}

void
AsciiChart::print(std::ostream &os) const
{
    // Collect the data extent.
    double xmin = 0.0, xmax = 1.0, ymax = 1.0;
    bool first = true;
    for (const auto &s : _series) {
        for (const auto &[x, y] : s.points) {
            const double px = _logX ? std::log10(x) : x;
            if (_logX)
                mc_assert(x > 0.0, "log-x chart requires positive x");
            if (first) {
                xmin = xmax = px;
                ymax = y;
                first = false;
            } else {
                xmin = std::min(xmin, px);
                xmax = std::max(xmax, px);
                ymax = std::max(ymax, y);
            }
        }
    }
    if (first) {
        os << "(no data)\n";
        return;
    }
    if (xmax <= xmin)
        xmax = xmin + 1.0;
    if (ymax <= 0.0)
        ymax = 1.0;

    // Rasterize.
    std::vector<std::string> grid(
        _height, std::string(static_cast<std::size_t>(_width), ' '));
    for (const auto &s : _series) {
        for (const auto &[x, y] : s.points) {
            const double px = _logX ? std::log10(x) : x;
            const int col = static_cast<int>(
                std::lround((px - xmin) / (xmax - xmin) * (_width - 1)));
            const int row = static_cast<int>(
                std::lround(y / ymax * (_height - 1)));
            const int r = _height - 1 - std::clamp(row, 0, _height - 1);
            const int c = std::clamp(col, 0, _width - 1);
            grid[r][c] = s.marker;
        }
    }

    if (!_title.empty())
        os << _title << "\n";
    char buf[32];
    for (int r = 0; r < _height; ++r) {
        const double yval =
            ymax * static_cast<double>(_height - 1 - r) / (_height - 1);
        std::snprintf(buf, sizeof(buf), "%8.1f |", yval);
        os << buf << grid[r] << "\n";
    }
    os << std::string(9, ' ') << '+' << std::string(_width, '-') << "\n";
    // X-axis end labels.
    const double x_lo = _logX ? std::pow(10.0, xmin) : xmin;
    const double x_hi = _logX ? std::pow(10.0, xmax) : xmax;
    std::snprintf(buf, sizeof(buf), "%-12.6g", x_lo);
    std::string axis(10, ' ');
    axis += buf;
    std::string hi_label;
    {
        char hb[32];
        std::snprintf(hb, sizeof(hb), "%.6g", x_hi);
        hi_label = hb;
    }
    const std::size_t total = 10 + static_cast<std::size_t>(_width);
    if (axis.size() + hi_label.size() < total)
        axis += std::string(total - axis.size() - hi_label.size(), ' ');
    axis += hi_label;
    os << axis << "\n";
    if (!_xLabel.empty() || !_yLabel.empty()) {
        os << "          x: " << _xLabel;
        if (!_yLabel.empty())
            os << "   y: " << _yLabel;
        os << "\n";
    }
    // Legend.
    for (const auto &s : _series) {
        if (!s.points.empty())
            os << "          " << s.marker << " " << s.label << "\n";
    }
}

std::string
AsciiChart::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace mc
