#include "atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace mc {

namespace {

/** errno rendered as "message (errno N)". */
std::string
errnoText()
{
    return std::string(std::strerror(errno)) + " (errno " +
           std::to_string(errno) + ")";
}

} // namespace

Status
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // The temp file must live in the target's directory: rename(2) is
    // atomic only within one filesystem. The pid suffix keeps
    // concurrent writers (distinct processes) from clobbering each
    // other's temp files.
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid());

    std::FILE *f = std::fopen(tmp_path.c_str(), "wb");
    if (!f) {
        return Status::invalidArgument("cannot create temp file '" +
                                       tmp_path + "': " + errnoText());
    }

    bool write_ok =
        contents.empty() ||
        std::fwrite(contents.data(), 1, contents.size(), f) ==
            contents.size();
    // Flush user-space buffers, then force the data to stable storage
    // before the rename makes it visible: a rename that survives a
    // crash must never point at un-synced content.
    write_ok = write_ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    if (std::fclose(f) != 0)
        write_ok = false;
    if (!write_ok) {
        std::remove(tmp_path.c_str());
        return Status::dataLoss("failed writing temp file '" + tmp_path +
                                "': " + errnoText());
    }

    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        const std::string detail = errnoText();
        std::remove(tmp_path.c_str());
        return Status::dataLoss("cannot rename '" + tmp_path + "' to '" +
                                path + "': " + detail);
    }

    // The rename only *orders* the directory update; it does not make
    // it durable. Power loss after the rename but before the directory
    // block reaches stable storage can resurrect the old file (or no
    // file at all) even though the data blocks above were fsynced — so
    // the durability contract requires fsyncing the parent directory
    // too. A failure here is DataLoss for the same reason a failed data
    // fsync is: the caller was promised a file that survives power
    // loss, and it does not have one.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) {
        return Status::dataLoss("cannot open directory '" + dir +
                                "' to sync '" + path +
                                "': " + errnoText());
    }
    const bool dir_synced = ::fsync(dir_fd) == 0;
    const std::string detail = dir_synced ? std::string() : errnoText();
    ::close(dir_fd);
    if (!dir_synced) {
        return Status::dataLoss("cannot sync directory '" + dir +
                                "' for '" + path + "': " + detail);
    }
    return Status::ok();
}

Status
AtomicFileWriter::commit()
{
    mc_assert(!_committed, "AtomicFileWriter::commit() called twice for '",
              _path, "'");
    _committed = true;
    return writeFileAtomic(_path, _buffer.str());
}

} // namespace mc
