/**
 * @file
 * Scalar tier of the int8 dot-product ladder: the plain reference
 * loop over a kGroup = 1 (row-major) packed panel. Compiled with the
 * project-default flags only, so it is also what MC_SIMD=scalar and
 * the memcmp gates compare every vector tier against.
 */

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
scalarDotI8(const std::int8_t *arow, const std::int8_t *bpack,
            std::size_t ldp, std::size_t nk, std::int32_t *accs,
            std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; ++kk) {
        const std::int32_t av = arow[kk];
        const std::int8_t *brow = bpack + kk * ldp;
        for (std::size_t j = 0; j < nj; ++j)
            accs[j] += av * static_cast<std::int32_t>(brow[j]);
    }
}

} // namespace

const Int8Kernels &
scalarInt8Kernels()
{
    static const Int8Kernels kernels = {SimdTier::Scalar, 1, false,
                                        &scalarDotI8};
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
