/**
 * @file
 * Out-of-line instantiations of the fast functional-GEMM inner
 * kernels. This translation unit is compiled -O3 (see CMakeLists.txt):
 * the repo's default -O2 does not vectorize the runtime-trip-count j
 * loops, and these few functions are where the m*n*k work happens.
 * Numeric results do not depend on the optimization level — SSE2 mul
 * and add round per lane exactly like the scalar code.
 */

#include "fast_gemm.hh"

namespace mc {
namespace blas {
namespace detail {

template void axpyPanel<float>(const float *, const float *, std::size_t,
                               std::size_t, float *, std::size_t);
template void axpyPanel<double>(const double *, const double *,
                                std::size_t, std::size_t, double *,
                                std::size_t);
template void axpyPanelSub<float>(const float *, const float *,
                                  std::size_t, std::size_t, float *,
                                  std::size_t);
template void axpyPanelSub<double>(const double *, const double *,
                                   std::size_t, std::size_t, double *,
                                   std::size_t);
template void axpyPanelRound<fp::Half, float>(const float *, const float *,
                                              std::size_t, std::size_t,
                                              float *, std::size_t);

} // namespace detail
} // namespace blas
} // namespace mc
