/**
 * @file
 * True strided-batched drivers over the fast functional-GEMM backend.
 *
 * The simulated device has modeled strided-batched GEMM since the
 * batched extension study (bench/ext_batched_gemm.cc), but the host
 * *functional* path used to verify those runs executed batch entries
 * as fully independent GEMM calls — re-staging every operand per
 * entry. These drivers implement the real thing: an operand whose
 * stride is zero (the batched-attention weight case, and rocBLAS's
 * strideA/strideB = 0 broadcast convention) is staged exactly once,
 * and every entry then fans out over the existing row-block
 * parallelism of blockedGemmCore. Nonzero-stride operands stage per
 * entry through the same PackCache/ScratchArena machinery as the
 * single-call entry points, so repeated weights across entries (or
 * across calls) still hit the cache.
 *
 * Bit-exactness: entry e computes exactly what fastReferenceGemm (or
 * fastTiledMatrixCoreGemm) computes on the e-th operand slices — same
 * staged bytes, same blocked core, same accumulation order — so the
 * batched drivers are memcmp-identical to a loop of single calls for
 * every tier, thread count, and cache setting
 * (tests/blas/batched_gemm_test.cc).
 */

#ifndef MC_BLAS_BATCHED_GEMM_HH
#define MC_BLAS_BATCHED_GEMM_HH

#include "blas/fast_gemm.hh"

namespace mc {
namespace blas {

namespace detail {

template <typename TCD, typename TAB, typename TAcc>
void
batchedGemmImpl(std::size_t batch, double alpha, const TAB *a,
                std::size_t stride_a, const TAB *b, std::size_t stride_b,
                double beta, const TCD *c, std::size_t stride_c, TCD *d,
                std::size_t stride_d, std::size_t m, std::size_t n,
                std::size_t k, std::size_t kpad, bool round_each_step,
                const FunctionalGemmOptions &opts)
{
    mc_assert(stride_c != 0 || batch <= 1,
              "batched GEMM: C entries may not alias");
    mc_assert(stride_d != 0 || batch <= 1,
              "batched GEMM: D entries may not alias");
    const FunctionalGemmOptions ropts = resolveFunctionalOptions(
        opts, comboForTypes<TCD, TAB, TAcc>(round_each_step), n);
    const SimdKernels &ker = simdKernelsFor(ropts.simd);

    // Shared (stride-0) operands stage once for the whole batch.
    ScratchArena::Frame shared_frame;
    std::shared_ptr<const PackEntry> keep_sa, keep_sb;
    const TAcc *shared_pa =
        stride_a == 0 ? stageWidened<TAB, TAcc>(PackKind::WidenA, a, m, k,
                                                kpad, ker, shared_frame,
                                                keep_sa)
                      : nullptr;
    const TAcc *shared_pb =
        stride_b == 0 ? stageWidened<TAB, TAcc>(PackKind::WidenB, b, k, n,
                                                kpad, ker, shared_frame,
                                                keep_sb)
                      : nullptr;

    for (std::size_t e = 0; e < batch; ++e) {
        ScratchArena::Frame frame;
        std::shared_ptr<const PackEntry> keep_a, keep_b;
        const TAcc *pa =
            shared_pa ? shared_pa
                      : stageWidened<TAB, TAcc>(PackKind::WidenA,
                                                a + e * stride_a, m, k,
                                                kpad, ker, frame, keep_a);
        const TAcc *pb =
            shared_pb ? shared_pb
                      : stageWidened<TAB, TAcc>(PackKind::WidenB,
                                                b + e * stride_b, k, n,
                                                kpad, ker, frame, keep_b);
        blockedGemmCore<TCD, TAcc>(m, n, kpad, alpha, pa, kpad, pb, n,
                                   beta, c + e * stride_c,
                                   d + e * stride_d, n, round_each_step,
                                   ropts);
    }
}

} // namespace detail

/**
 * Strided-batched D_e = alpha * A_e * B_e + beta * C_e with
 * referenceGemm semantics, entry operands at element strides
 * @p stride_a/@p stride_b/@p stride_c/@p stride_d (a zero operand
 * stride broadcasts — and stages — one matrix across the batch; C and
 * D strides must be nonzero for batch > 1). Bit-identical per entry to
 * fastReferenceGemm.
 */
template <typename TCD, typename TAB, typename TAcc>
void
fastBatchedGemm(std::size_t batch, double alpha, const TAB *a,
                std::size_t stride_a, const TAB *b, std::size_t stride_b,
                double beta, const TCD *c, std::size_t stride_c, TCD *d,
                std::size_t stride_d, std::size_t m, std::size_t n,
                std::size_t k, bool round_each_step = false,
                const FunctionalGemmOptions &opts = FunctionalGemmOptions())
{
    detail::batchedGemmImpl<TCD, TAB, TAcc>(
        batch, alpha, a, stride_a, b, stride_b, beta, c, stride_c, d,
        stride_d, m, n, k, /*kpad=*/k, round_each_step, opts);
}

/**
 * Strided-batched equivalent of fastTiledMatrixCoreGemm: k zero-padded
 * to the instruction's k multiple, no per-step rounding. Bit-identical
 * per entry to fastTiledMatrixCoreGemm.
 */
template <typename TCD, typename TAB, typename TAcc>
void
fastBatchedTiledMatrixCoreGemm(
    const arch::MfmaInstruction &inst, std::size_t batch, double alpha,
    const TAB *a, std::size_t stride_a, const TAB *b,
    std::size_t stride_b, double beta, const TCD *c, std::size_t stride_c,
    TCD *d, std::size_t stride_d, std::size_t m, std::size_t n,
    std::size_t k, const FunctionalGemmOptions &opts =
                       FunctionalGemmOptions())
{
    mc_assert(inst.shape.blocks == 1,
              "the tiled path uses single-block instructions");
    const std::size_t tk = static_cast<std::size_t>(inst.shape.k);
    const std::size_t kpad = (k + tk - 1) / tk * tk;
    detail::batchedGemmImpl<TCD, TAB, TAcc>(
        batch, alpha, a, stride_a, b, stride_b, beta, c, stride_c, d,
        stride_d, m, n, k, kpad, /*round_each_step=*/false, opts);
}

} // namespace blas
} // namespace mc

#endif // MC_BLAS_BATCHED_GEMM_HH
