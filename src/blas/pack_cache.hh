/**
 * @file
 * Memoization of packed GEMM operands.
 *
 * The fast functional backend consumes operands in staged layouts —
 * A widened to the accumulator type with padded columns, B widened (or
 * k-group interleaved for int8) row panels, and the int8 zero-point
 * row/column sums — and until this cache it rebuilt every one of them
 * on every call. The transformer benches, the verify paths, and
 * mc_serve replay the same weight matrices thousands of times, so the
 * staging work (not the multiply loop) dominates exactly the skinny
 * decode-shaped GEMMs the paper's low-N ramps study.
 *
 * Keys are content-addressed: a CRC-32 fingerprint of the source
 * operand bytes plus the shape, the source/accumulator types, the
 * resolved SIMD tier, and the padded depth. Mutating an operand in
 * place therefore misses (never serves stale panels), and two
 * logically identical matrices at different addresses share one entry.
 * The cached bytes are produced by the exact same packing routines the
 * uncached path runs, so results are memcmp-identical with the cache
 * on or off — tests/blas/pack_cache_test.cc and the
 * ComparePackCache.cmake gate enforce this.
 *
 * The cache is process-wide (PackCache::instance()) and byte-capped
 * (LRU, default 64 MB). Control knobs: the MC_PACK_CACHE environment
 * variable ("off" or a capacity in MB; wins over flags, so CI gates
 * can pin behavior) and the --pack-cache-mb bench/serve flag.
 */

#ifndef MC_BLAS_PACK_CACHE_HH
#define MC_BLAS_PACK_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>

#include "common/hash.hh"
#include "fp/bfloat16.hh"
#include "fp/half.hh"

namespace mc {
namespace blas {

/** Which staged layout an entry holds. */
enum class PackKind : std::uint8_t
{
    WidenA,   ///< row-major widen of A, columns padded to `pad`
    WidenB,   ///< row-major widen of B, rows padded to `pad`
    I8PadA,   ///< int8 A with columns zero-padded to `pad`
    I8PackB,  ///< int8 B in the tier's k-group interleaved layout
    I8RowSum, ///< int32 per-row sums of int8 A
    I8ColSum, ///< int32 per-column sums of int8 B
};

/** Storage-type tag of a pack key (stable across builds). */
template <typename T>
constexpr std::uint8_t packTypeTag();

/**
 * Full identity of one staged operand: the content fingerprint plus
 * every parameter that shapes the staged bytes.
 */
struct PackKey
{
    PackKind kind = PackKind::WidenA;
    std::uint8_t srcType = 0;    ///< packTypeTag of the stored operand
    std::uint8_t accType = 0;    ///< packTypeTag of the staged element
    std::uint8_t tier = 0;       ///< resolved SimdTier (layout owner)
    std::uint32_t fingerprint = 0; ///< crc32 over the source bytes
    std::uint64_t srcBytes = 0;  ///< source operand size (guards crc)
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t pad = 0;       ///< padded depth (kpad / kp); 0 if n/a

    bool operator==(const PackKey &) const = default;
};

/** Stable hash functor over every PackKey field. */
struct PackKeyHash
{
    std::size_t operator()(const PackKey &key) const;
};

/** One cached staged buffer (64-byte aligned). Returned shared so the
 *  bytes outlive LRU eviction for as long as a caller computes on
 *  them. */
struct PackEntry
{
    std::shared_ptr<void> data;
    std::size_t bytes = 0;

    template <typename T>
    const T *as() const
    {
        return static_cast<const T *>(data.get());
    }
};

/** Counter snapshot (reported on bench completion lines and in the
 *  mc_serve stats response, next to the plan-cache counters). */
struct PackCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t residentBytes = 0;
};

/**
 * Thread-safe, byte-capped LRU of staged operands. Tests construct
 * standalone instances; production code shares PackCache::instance().
 */
class PackCache
{
  public:
    /** Fills a freshly allocated staged buffer; runs outside the cache
     *  lock. */
    using FillFn = std::function<void(void *out)>;

    explicit PackCache(std::size_t capacity_bytes);

    /**
     * Return the staged bytes for @p key, producing them via @p fill on
     * first request. Entries larger than the capacity are built but not
     * retained (the caller still gets a live buffer). Concurrent
     * first requests may both fill; one insertion wins.
     */
    std::shared_ptr<const PackEntry>
    findOrPack(const PackKey &key, std::size_t bytes, const FillFn &fill);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    /** Bytes currently retained. */
    std::uint64_t residentBytes() const;
    std::size_t size() const;

    std::size_t capacityBytes() const;
    /** Change the byte cap; excess LRU entries are evicted at once. */
    void setCapacityBytes(std::size_t capacity_bytes);

    /** Drop all entries and reset the counters (not the capacity). */
    void clear();

    // ---- Process-wide instance --------------------------------------

    /**
     * The shared cache. First use reads MC_PACK_CACHE ("off"/"0"
     * disables; a number sets the capacity in MB) and otherwise starts
     * at kDefaultCapacityBytes.
     */
    static PackCache &instance();

    /** False when packing should bypass the shared cache entirely. */
    static bool enabled();
    /** Programmatic on/off switch (mc_perf's warm/cold sweeps; also
     *  how --pack-cache-mb 0 disables). Overrides the environment. */
    static void setEnabled(bool enabled);
    /** Apply --pack-cache-mb (0 disables) unless MC_PACK_CACHE is set —
     *  the environment contract wins, like MC_TUNE/MC_SIMD. */
    static void configureCapacityMb(std::uint64_t mb);

    /** Counter snapshot of the shared instance (zeros when the cache
     *  has never been touched). */
    static PackCacheStats globalStats();

    /**
     * True when a source operand of @p src_bytes should consult the
     * shared cache: enabled() and at least minSourceBytes() large.
     * A lookup — hit or miss — scans the operand (the fingerprint)
     * and takes the lock, which for small panels costs as much as
     * just re-staging them into the scratch arena; below the
     * threshold the cache could only break even, so staging bypasses
     * it entirely. Measured on the quantized transformer's per-head
     * attention GEMMs (8 KB panels), where caching was a slight net
     * loss and bypassing is neutral-to-positive.
     */
    static bool shouldCache(std::size_t src_bytes);
    static std::size_t minSourceBytes();
    /** Tests set 0 to force tiny panels through the cache. */
    static void setMinSourceBytes(std::size_t bytes);

    /** 64 MB: a few dozen decode-shaped weight panels. */
    static constexpr std::size_t kDefaultCapacityBytes =
        64ull * 1024 * 1024;

    /** 16 KB: staging beats the lookup below roughly this size. */
    static constexpr std::size_t kDefaultMinSourceBytes = 16 * 1024;

  private:
    void evictExcessLocked();

    using LruList =
        std::list<std::pair<PackKey, std::shared_ptr<const PackEntry>>>;

    mutable std::mutex _mutex;
    LruList _lru; ///< most-recently-used entries at the front
    std::unordered_map<PackKey, LruList::iterator, PackKeyHash> _index;
    std::size_t _capacity = 0;
    std::uint64_t _resident = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

/**
 * CRC-32 fingerprint of a source operand (the PackKey::fingerprint
 * field). Every lookup — hit or miss — pays this scan, so it must be
 * much cheaper than re-staging: on x86-64 with SSE4.2 it runs three
 * interleaved hardware crc32 chains (~0.15 cycles/byte), elsewhere the
 * portable slice-by-8 crc32 from common/hash.hh (~1 cycle/byte). The
 * two produce different values; keys are process-local and never
 * persisted, so only in-process determinism matters.
 */
std::uint32_t packFingerprint(const void *data, std::size_t bytes);

// The keys are runtime-only (never persisted), but the tags stay
// stable anyway so debugging across builds stays sane.
template <typename T>
constexpr std::uint8_t
packTypeTag()
{
    if constexpr (std::is_same_v<T, float>)
        return 1;
    else if constexpr (std::is_same_v<T, double>)
        return 2;
    else if constexpr (std::is_same_v<T, fp::Half>)
        return 3;
    else if constexpr (std::is_same_v<T, fp::BFloat16>)
        return 4;
    else if constexpr (std::is_same_v<T, std::int8_t>)
        return 5;
    else
        return 6; // std::int32_t (the i8 sum vectors)
}

} // namespace blas
} // namespace mc

#endif // MC_BLAS_PACK_CACHE_HH
