#include "simd_dispatch.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "blas/simd_int_kernels.hh"
#include "blas/simd_kernels.hh"
#include "common/logging.hh"

namespace mc {
namespace blas {

namespace {

/** Ladder rung for clamping: an unavailable request falls to the best
 *  available tier at or below its rung. Neon shares the Sse2 rung (the
 *  128-bit baseline of the other architecture). */
int
tierRank(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Auto: return -1;
      case SimdTier::Scalar: return 0;
      case SimdTier::Sse2: return 1;
      case SimdTier::Neon: return 1;
      case SimdTier::Avx2: return 2;
      case SimdTier::Avx512: return 3;
    }
    mc_panic("unreachable SimdTier");
}

CpuFeatures
probeCpu()
{
    CpuFeatures f;
#if defined(MC_SIMD_HAVE_X86)
    // The GCC/Clang builtins account for OS XSAVE support, not just
    // the CPUID bits, so an AVX-capable CPU under an AVX-less kernel
    // correctly reports false.
    f.sse2 = __builtin_cpu_supports("sse2");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.avx512 = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl") &&
               __builtin_cpu_supports("avx512dq");
    f.avx512vnni = f.avx512 && __builtin_cpu_supports("avx512vnni");
#endif
#if defined(MC_SIMD_HAVE_NEON)
    f.neon = true; // baseline on aarch64
#endif
    return f;
}

/** Bitmask (1 << int(tier)) of every tier simdKernels() has handed
 *  out, so completion lines can report the tiers actually dispatched
 *  rather than the process-default resolution. */
std::atomic<unsigned> g_dispatched_tiers{0};

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = probeCpu();
    return features;
}

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Auto: return "auto";
      case SimdTier::Scalar: return "scalar";
      case SimdTier::Sse2: return "sse2";
      case SimdTier::Avx2: return "avx2";
      case SimdTier::Avx512: return "avx512";
      case SimdTier::Neon: return "neon";
    }
    mc_panic("unreachable SimdTier");
}

bool
parseSimdTier(std::string_view text, SimdTier *out)
{
    for (SimdTier tier :
         {SimdTier::Auto, SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2,
          SimdTier::Avx512, SimdTier::Neon}) {
        if (text == simdTierName(tier)) {
            *out = tier;
            return true;
        }
    }
    return false;
}

bool
simdTierAvailable(SimdTier tier)
{
    const CpuFeatures &f = cpuFeatures();
    switch (tier) {
      case SimdTier::Auto: return false;
      case SimdTier::Scalar: return true;
      case SimdTier::Sse2: return f.sse2;
      case SimdTier::Avx2: return f.avx2;
      case SimdTier::Avx512: return f.avx512;
      case SimdTier::Neon: return f.neon;
    }
    mc_panic("unreachable SimdTier");
}

std::vector<SimdTier>
availableSimdTiers()
{
    std::vector<SimdTier> tiers;
    for (SimdTier tier : {SimdTier::Scalar, SimdTier::Sse2, SimdTier::Neon,
                          SimdTier::Avx2, SimdTier::Avx512}) {
        if (simdTierAvailable(tier))
            tiers.push_back(tier);
    }
    return tiers;
}

SimdTier
bestSimdTier()
{
    SimdTier best = SimdTier::Scalar;
    for (SimdTier tier : availableSimdTiers())
        if (tierRank(tier) > tierRank(best))
            best = tier;
    return best;
}

SimdTier
envSimdTier()
{
    static const SimdTier tier = [] {
        const char *value = std::getenv("MC_SIMD");
        if (value == nullptr || value[0] == '\0')
            return SimdTier::Auto;
        SimdTier parsed = SimdTier::Auto;
        if (!parseSimdTier(value, &parsed))
            mc_fatal("bad MC_SIMD value '", value,
                     "': expected auto|scalar|sse2|avx2|avx512|neon");
        return parsed;
    }();
    return tier;
}

SimdTier
resolveSimdTier(SimdTier requested)
{
    if (requested == SimdTier::Auto)
        requested = envSimdTier();
    if (requested == SimdTier::Auto)
        return bestSimdTier();
    if (simdTierAvailable(requested))
        return requested;

    SimdTier clamped = SimdTier::Scalar;
    for (SimdTier tier : availableSimdTiers())
        if (tierRank(tier) <= tierRank(requested) &&
            tierRank(tier) > tierRank(clamped))
            clamped = tier;

    // One note per distinct clamped request, on stderr: stdout must
    // stay byte-identical across tiers (and it will be — the clamped
    // tier computes the same bits).
    static std::once_flag noted[6];
    std::call_once(noted[static_cast<int>(requested)], [&] {
        std::fprintf(stderr,
                     "[mc] MC_SIMD tier '%s' is unavailable on this host; "
                     "clamping to '%s'\n",
                     simdTierName(requested), simdTierName(clamped));
    });
    return clamped;
}

const SimdKernels &
simdKernels(SimdTier resolved)
{
    mc_assert(resolved != SimdTier::Auto,
              "simdKernels needs a resolved tier");
    const SimdKernels *kernels = &detail::scalarSimdKernels();
    switch (resolved) {
#if defined(MC_SIMD_HAVE_X86)
      case SimdTier::Sse2: kernels = &detail::sse2SimdKernels(); break;
      case SimdTier::Avx2: kernels = &detail::avx2SimdKernels(); break;
      case SimdTier::Avx512:
        kernels = &detail::avx512SimdKernels();
        break;
#endif
#if defined(MC_SIMD_HAVE_NEON)
      case SimdTier::Neon: kernels = &detail::neonSimdKernels(); break;
#endif
      default: break;
    }
    // Record the tier of the table handed out (not the request — an
    // unavailable compiled-out tier lands on scalar here).
    g_dispatched_tiers.fetch_or(1u << static_cast<int>(kernels->tier),
                                std::memory_order_relaxed);
    return *kernels;
}

std::string
usedSimdTierLabel()
{
    const unsigned mask =
        g_dispatched_tiers.load(std::memory_order_relaxed);
    if (mask == 0)
        return simdTierName(resolveSimdTier(SimdTier::Auto));
    std::string label;
    for (SimdTier tier : {SimdTier::Scalar, SimdTier::Sse2, SimdTier::Neon,
                          SimdTier::Avx2, SimdTier::Avx512}) {
        if ((mask & (1u << static_cast<int>(tier))) == 0)
            continue;
        if (!label.empty())
            label += '+';
        label += simdTierName(tier);
    }
    return label;
}

const SimdKernels &
simdKernelsFor(SimdTier requested)
{
    return simdKernels(resolveSimdTier(requested));
}

const Int8Kernels &
int8Kernels(SimdTier resolved)
{
    mc_assert(resolved != SimdTier::Auto,
              "int8Kernels needs a resolved tier");
    const Int8Kernels *kernels = &detail::scalarInt8Kernels();
    switch (resolved) {
#if defined(MC_SIMD_HAVE_X86)
      case SimdTier::Sse2: kernels = &detail::sse2Int8Kernels(); break;
      case SimdTier::Avx2: kernels = &detail::avx2Int8Kernels(); break;
      case SimdTier::Avx512:
        kernels = &detail::avx512Int8Kernels();
        break;
#endif
#if defined(MC_SIMD_HAVE_NEON)
      case SimdTier::Neon: kernels = &detail::neonInt8Kernels(); break;
#endif
      default: break;
    }
    g_dispatched_tiers.fetch_or(1u << static_cast<int>(kernels->tier),
                                std::memory_order_relaxed);
    return *kernels;
}

const Int8Kernels &
int8KernelsFor(SimdTier requested)
{
    return int8Kernels(resolveSimdTier(requested));
}

} // namespace blas
} // namespace mc
