#include "gemm.hh"

#include <sstream>

#include "blas/tune.hh"
#include "common/logging.hh"

namespace mc {
namespace blas {

GemmEngine::GemmEngine(hip::Runtime &rt, PlannerOptions opts)
    : _rt(rt), _opts(opts),
      _calFingerprint(arch::calibrationFingerprint(rt.gpu().calibration()))
{}

std::shared_ptr<const GemmPlan>
GemmEngine::cachedPlan(const GemmConfig &config) const
{
    // Resolve the functional knobs here, at plan-build/lookup time:
    // auto (0) fields consult the active tuning artifact exactly once
    // per distinct problem, and the tuning fingerprint in the key makes
    // artifact swaps miss instead of reusing stale resolutions.
    const std::uint64_t tune_fp = tuningActive() ? hostTuneFingerprint() : 0;
    const FunctionalGemmOptions func =
        resolveFunctionalOptions(_funcOpts, config.combo, config.n);
    const PlanKey key =
        makePlanKey(config, _opts, _calFingerprint, func, tune_fp);
    PlanCache &cache = _sharedCache ? *_sharedCache : _planCache;
    return cache.findOrCompute(key, [&]() {
        GemmPlan plan = planGemm(config, _rt.gpu().calibration(), _opts);
        plan.func = func;
        return plan;
    });
}

GemmPlan
GemmEngine::plan(const GemmConfig &config) const
{
    return *cachedPlan(config);
}

VerifyResult
GemmEngine::verify(const GemmConfig &config, VerifyScheme scheme,
                   std::uint64_t seed) const
{
    // Hand verification the plan's resolved knobs so it runs the exact
    // block configuration the engine would execute (tuned or default).
    return verifyGemm(config, scheme, seed, _opts, cachedPlan(config)->func);
}

std::size_t
GemmEngine::operandBytes(const GemmConfig &config)
{
    const ComboInfo &info = comboInfo(config.combo);
    const std::size_t s_ab = arch::dataTypeBytes(info.typeAB);
    const std::size_t s_cd = arch::dataTypeBytes(info.typeCD);
    return (config.m * config.k * s_ab + config.k * config.n * s_ab +
            config.m * config.n * s_cd) * config.batchCount;
}

Result<GemmResult>
GemmEngine::run(const GemmConfig &config)
{
    const ComboInfo &info = comboInfo(config.combo);
    const std::size_t s_ab = arch::dataTypeBytes(info.typeAB);
    const std::size_t s_cd = arch::dataTypeBytes(info.typeCD);

    // Fail fast before allocating anything: an over-sized sweep point
    // is the expected end of the paper's sweep, and OOM points would
    // otherwise pay two allocations of churn per repetition.
    const std::size_t total = operandBytes(config);
    if (total > _rt.freeBytes(config.device)) {
        std::ostringstream msg;
        msg << "GEMM operands need " << total << " bytes but device "
            << config.device << " has " << _rt.freeBytes(config.device)
            << " bytes of HBM free";
        return Status::outOfMemory(msg.str());
    }

    // Allocate the operands; failure here is the sweep-terminating
    // condition ("until exhausting the GPU memory").
    const std::size_t batch = config.batchCount;
    auto a = _rt.malloc(config.device, config.m * config.k * s_ab * batch);
    if (!a.isOk())
        return a.status();
    auto b = _rt.malloc(config.device, config.k * config.n * s_ab * batch);
    if (!b.isOk()) {
        _rt.free(a.value());
        return b.status();
    }
    auto c = _rt.malloc(config.device, config.m * config.n * s_cd * batch);
    if (!c.isOk()) {
        _rt.free(a.value());
        _rt.free(b.value());
        return c.status();
    }

    const std::shared_ptr<const GemmPlan> plan_ptr = cachedPlan(config);
    const GemmPlan &plan = *plan_ptr;

    GemmResult result;
    result.kernel = _rt.launch(plan.profile, config.device);
    result.usedMatrixCores = plan.useMatrixCores;
    result.macroTile = plan.macroTile;

    _rt.free(a.value());
    _rt.free(b.value());
    _rt.free(c.value());

    // A fault during execution (injected transient launch failure,
    // uncorrectable ECC, ...) invalidates the measurement: surface it
    // as an error so callers retry or record the point as failed.
    if (result.kernel.fault != ErrorCode::Ok) {
        std::ostringstream msg;
        msg << "GEMM kernel '" << plan.profile.label << "' failed: "
            << errorCodeName(result.kernel.fault);
        return Status(result.kernel.fault, msg.str());
    }
    return result;
}

} // namespace blas
} // namespace mc
