#include "gemm.hh"

#include "common/logging.hh"

namespace mc {
namespace blas {

GemmEngine::GemmEngine(hip::Runtime &rt, PlannerOptions opts)
    : _rt(rt), _opts(opts)
{}

GemmPlan
GemmEngine::plan(const GemmConfig &config) const
{
    return planGemm(config, _rt.gpu().calibration(), _opts);
}

std::size_t
GemmEngine::operandBytes(const GemmConfig &config)
{
    const ComboInfo &info = comboInfo(config.combo);
    const std::size_t s_ab = arch::dataTypeBytes(info.typeAB);
    const std::size_t s_cd = arch::dataTypeBytes(info.typeCD);
    return (config.m * config.k * s_ab + config.k * config.n * s_ab +
            config.m * config.n * s_cd) * config.batchCount;
}

Result<GemmResult>
GemmEngine::run(const GemmConfig &config)
{
    const ComboInfo &info = comboInfo(config.combo);
    const std::size_t s_ab = arch::dataTypeBytes(info.typeAB);
    const std::size_t s_cd = arch::dataTypeBytes(info.typeCD);

    // Allocate the operands; failure here is the sweep-terminating
    // condition ("until exhausting the GPU memory").
    const std::size_t batch = config.batchCount;
    auto a = _rt.malloc(config.device, config.m * config.k * s_ab * batch);
    if (!a.isOk())
        return a.status();
    auto b = _rt.malloc(config.device, config.k * config.n * s_ab * batch);
    if (!b.isOk()) {
        _rt.free(a.value());
        return b.status();
    }
    auto c = _rt.malloc(config.device, config.m * config.n * s_cd * batch);
    if (!c.isOk()) {
        _rt.free(a.value());
        _rt.free(b.value());
        return c.status();
    }

    GemmPlan plan = planGemm(config, _rt.gpu().calibration(), _opts);

    GemmResult result;
    result.kernel = _rt.launch(plan.profile, config.device);
    result.usedMatrixCores = plan.useMatrixCores;
    result.macroTile = plan.macroTile;

    _rt.free(a.value());
    _rt.free(b.value());
    _rt.free(c.value());
    return result;
}

} // namespace blas
} // namespace mc
