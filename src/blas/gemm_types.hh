/**
 * @file
 * The GEMM datatype combinations the paper evaluates (Table III plus
 * the plain single/double routines), and the result record of one GEMM
 * execution.
 */

#ifndef MC_BLAS_GEMM_TYPES_HH
#define MC_BLAS_GEMM_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "arch/types.hh"
#include "blas/simd_dispatch.hh"
#include "sim/device.hh"

namespace mc {
namespace blas {

/**
 * Datatype combination of a rocblas_gemm_ex-style call.
 *
 * Naming follows the paper: HGEMM/HSS/HHS operate on FP16 A/B and
 * differ in the C/D and compute types (Table III).
 */
enum class GemmCombo
{
    Dgemm,  ///< f64 <- f64, compute f64
    Sgemm,  ///< f32 <- f32, compute f32
    Hgemm,  ///< f16 <- f16, compute f16 (no Matrix Core support!)
    Hhs,    ///< f16 C/D, f16 A/B, compute f32
    Hss,    ///< f32 C/D, f16 A/B, compute f32
    I8gemm, ///< i8 C/D, i8 A/B, i32 accumulate + requantize
};

/** Static description of a combo (the paper's Table III row). */
struct ComboInfo
{
    const char *name;
    arch::DataType typeAB;
    arch::DataType typeCD;
    arch::DataType computeType; ///< type of the alpha/beta arithmetic
};

/** Table III lookup. */
const ComboInfo &comboInfo(GemmCombo combo);

/** The paper's five float combos, in its presentation order. The
 *  figure benches and Table III renderings iterate this list; the
 *  INT8 extension is deliberately not part of the paper's layout. */
inline constexpr GemmCombo allCombos[] = {
    GemmCombo::Dgemm, GemmCombo::Sgemm, GemmCombo::Hgemm,
    GemmCombo::Hhs, GemmCombo::Hss,
};

/** Every combo the library implements: the paper's five plus the
 *  quantized INT8 path (docs/PERF.md "Integer kernels"). Name parsing
 *  (CLI flags, tuning artifacts, serve requests) accepts all of
 *  these. */
inline constexpr GemmCombo allLibraryCombos[] = {
    GemmCombo::Dgemm, GemmCombo::Sgemm, GemmCombo::Hgemm,
    GemmCombo::Hhs, GemmCombo::Hss, GemmCombo::I8gemm,
};

/** Parse a combo name ("dgemm", "i8gemm", ...); fatal on unknown
 *  names. */
GemmCombo parseCombo(const std::string &name);

// ---- Quantization -------------------------------------------------------

/**
 * Per-tensor affine quantization parameters of an I8gemm call:
 * real = scale * (q - zero) for each of A, B and C/D.
 *
 * The kernel contract (docs/PERF.md "Integer kernels"): accumulate
 * sum_k (a - zeroA)*(b - zeroB) exactly in int32, then requantize
 *
 *   D = saturate_i8(rne(alpha*effScale*acc + beta*(c - zeroD)) + zeroD)
 *
 * with effScale = scaleA*scaleB/scaleD and rne = round-to-nearest,
 * ties-to-even. Integer accumulation is exact in any order, so every
 * SIMD tier produces bit-identical D by construction.
 */
struct QuantParams
{
    float scaleA = 1.0f; ///< positive, finite
    float scaleB = 1.0f;
    float scaleD = 1.0f;
    std::int32_t zeroA = 0; ///< in [-128, 127]
    std::int32_t zeroB = 0;
    std::int32_t zeroD = 0;

    bool operator==(const QuantParams &) const = default;
};

// ---- Functional-backend knobs -------------------------------------------

/** Built-in block constants of the fast functional backend: what an
 *  auto (0) field resolves to when no tuning artifact supplies a
 *  better value (docs/PERF.md "Autotuning"). */
inline constexpr int kDefaultBlockM = 64;
inline constexpr int kDefaultBlockN = 128;
inline constexpr int kDefaultBlockK = 256;

/**
 * Thread / block-size knobs of the fast functional backend
 * (src/blas/fast_gemm.hh). Results are identical for every setting —
 * the knobs trade speed only.
 *
 * Block fields default to 0 = "auto": resolved at plan/dispatch time
 * to the persisted autotuner configuration for this (combo, SIMD tier,
 * problem-size bucket) when a tuning artifact is active, and to the
 * kDefaultBlock* constants otherwise (blas/tune.hh). An explicit
 * (> 0) value always wins over the artifact, and MC_TUNE=off disables
 * the artifact process-wide.
 */
struct FunctionalGemmOptions
{
    /** Row-block fan-out width: >= 1 explicit (1 = serial), 0 = auto
     *  (tuned thread count when an artifact is active, hardware
     *  concurrency otherwise), < 0 = hardware concurrency. */
    int threads = 1;
    /** Rows per parallel task (also the i-block); 0 = auto. */
    int blockM = 0;
    /** Output-panel width (j-block; accumulator row length); 0 = auto. */
    int blockN = 0;
    /** Depth of one k-panel; 0 = auto. */
    int blockK = 0;
    /** Route through the retained scalar kernels instead (the
     *  bit-exactness baseline; also what mc_perf times as "old"). */
    bool forceScalar = false;
    /** SIMD micro-kernel tier. Auto defers to the MC_SIMD environment
     *  override, then to the best tier the CPU supports. Results are
     *  bit-identical across tiers — this knob trades speed (and aids
     *  debugging) only. An unavailable explicit tier clamps down the
     *  ladder with a one-time stderr note. */
    SimdTier simd = SimdTier::Auto;
};

/**
 * One D <- alpha*A*B + beta*C problem.
 */
struct GemmConfig
{
    GemmCombo combo = GemmCombo::Sgemm;
    std::size_t m = 0;
    std::size_t n = 0;
    std::size_t k = 0;
    double alpha = 1.0;
    double beta = 0.0;
    int device = 0;

    /**
     * Independent problems solved by one call (the
     * rocblas_gemm_strided_batched_ex pattern ML workloads use);
     * 1 = plain GEMM.
     */
    std::size_t batchCount = 1;

    /** Ablation knob: force the macro-tile edge (0 = heuristic). */
    int forceMacroTile = 0;
    /** Ablation knob: force the Matrix Core path decision. */
    std::optional<bool> forceMatrixCorePath;

    /** Quantization parameters; consulted by I8gemm only (and part of
     *  that combo's plan identity). */
    QuantParams quant;

    /** Algorithmic multiply-add FLOPs of the matrix product
     *  (2mnk per batch entry). */
    double productFlops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k) * static_cast<double>(batchCount);
    }
};

/** Outcome of one GEMM execution. */
struct GemmResult
{
    sim::KernelResult kernel;
    bool usedMatrixCores = false;
    int macroTile = 0;

    /** Delivered FLOP/s (matrix product + scaling work over time). */
    double throughput() const { return kernel.throughput(); }
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_GEMM_TYPES_HH
