/**
 * @file
 * The GEMM datatype combinations the paper evaluates (Table III plus
 * the plain single/double routines), and the result record of one GEMM
 * execution.
 */

#ifndef MC_BLAS_GEMM_TYPES_HH
#define MC_BLAS_GEMM_TYPES_HH

#include <cstddef>
#include <optional>
#include <string>

#include "arch/types.hh"
#include "sim/device.hh"

namespace mc {
namespace blas {

/**
 * Datatype combination of a rocblas_gemm_ex-style call.
 *
 * Naming follows the paper: HGEMM/HSS/HHS operate on FP16 A/B and
 * differ in the C/D and compute types (Table III).
 */
enum class GemmCombo
{
    Dgemm, ///< f64 <- f64, compute f64
    Sgemm, ///< f32 <- f32, compute f32
    Hgemm, ///< f16 <- f16, compute f16 (no Matrix Core support!)
    Hhs,   ///< f16 C/D, f16 A/B, compute f32
    Hss,   ///< f32 C/D, f16 A/B, compute f32
};

/** Static description of a combo (the paper's Table III row). */
struct ComboInfo
{
    const char *name;
    arch::DataType typeAB;
    arch::DataType typeCD;
    arch::DataType computeType; ///< type of the alpha/beta arithmetic
};

/** Table III lookup. */
const ComboInfo &comboInfo(GemmCombo combo);

/** All five combos, in the paper's presentation order. */
inline constexpr GemmCombo allCombos[] = {
    GemmCombo::Dgemm, GemmCombo::Sgemm, GemmCombo::Hgemm,
    GemmCombo::Hhs, GemmCombo::Hss,
};

/** Parse a combo name ("dgemm", "hss", ...); fatal on unknown names. */
GemmCombo parseCombo(const std::string &name);

/**
 * One D <- alpha*A*B + beta*C problem.
 */
struct GemmConfig
{
    GemmCombo combo = GemmCombo::Sgemm;
    std::size_t m = 0;
    std::size_t n = 0;
    std::size_t k = 0;
    double alpha = 1.0;
    double beta = 0.0;
    int device = 0;

    /**
     * Independent problems solved by one call (the
     * rocblas_gemm_strided_batched_ex pattern ML workloads use);
     * 1 = plain GEMM.
     */
    std::size_t batchCount = 1;

    /** Ablation knob: force the macro-tile edge (0 = heuristic). */
    int forceMacroTile = 0;
    /** Ablation knob: force the Matrix Core path decision. */
    std::optional<bool> forceMatrixCorePath;

    /** Algorithmic multiply-add FLOPs of the matrix product
     *  (2mnk per batch entry). */
    double productFlops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k) * static_cast<double>(batchCount);
    }
};

/** Outcome of one GEMM execution. */
struct GemmResult
{
    sim::KernelResult kernel;
    bool usedMatrixCores = false;
    int macroTile = 0;

    /** Delivered FLOP/s (matrix product + scaling work over time). */
    double throughput() const { return kernel.throughput(); }
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_GEMM_TYPES_HH
