#include "pack_cache.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MC_PACK_HW_CRC 1
#include <immintrin.h>
#endif

namespace mc {
namespace blas {

namespace {

#ifdef MC_PACK_HW_CRC
/**
 * Three interleaved hardware CRC32-C chains. The crc32 instruction is
 * 3-cycle latency / 1-per-cycle throughput, so one dependent chain
 * caps at ~0.375 cycles/byte; three independent chains over thirds of
 * the buffer run at ~0.15. The streams are mixed with two more crc32
 * steps (plus the length) into one word — not the CRC of the
 * concatenation, which the fingerprint contract does not need.
 */
__attribute__((target("sse4.2"))) std::uint32_t
crc32cFingerprint(const unsigned char *p, std::size_t n)
{
    constexpr std::size_t kWord = sizeof(std::uint64_t);
    const std::size_t per = n / kWord / 3;
    const unsigned char *s0 = p;
    const unsigned char *s1 = p + per * kWord;
    const unsigned char *s2 = p + 2 * per * kWord;
    std::uint64_t c0 = 0xffffffffu, c1 = 0, c2 = 0;
    for (std::size_t i = 0; i < per; ++i) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, s0 + i * kWord, kWord);
        std::memcpy(&w1, s1 + i * kWord, kWord);
        std::memcpy(&w2, s2 + i * kWord, kWord);
        c0 = _mm_crc32_u64(c0, w0);
        c1 = _mm_crc32_u64(c1, w1);
        c2 = _mm_crc32_u64(c2, w2);
    }
    for (const unsigned char *q = p + 3 * per * kWord; q != p + n; ++q)
        c0 = _mm_crc32_u8(static_cast<std::uint32_t>(c0), *q);
    std::uint64_t mix = _mm_crc32_u64(c0, c1 | (c2 << 32));
    mix = _mm_crc32_u64(mix, n);
    return static_cast<std::uint32_t>(mix) ^ 0xffffffffu;
}
#endif // MC_PACK_HW_CRC

/** Shared-instance switch: -1 unset (consult the environment), else
 *  0/1. Programmatic setEnabled always wins (mc_perf's warm/cold
 *  sweeps toggle it mid-process). */
std::atomic<int> g_enabled_override{-1};

struct EnvConfig
{
    bool disabled = false;
    bool present = false;
    std::size_t capacityBytes = PackCache::kDefaultCapacityBytes;
};

/** Parse MC_PACK_CACHE once: "off"/"0" disables, a number is the
 *  capacity in MB. Unparsable values fall back to the default cap
 *  (never fatal: the cache is a speed knob, not a semantic one). */
const EnvConfig &
envConfig()
{
    static const EnvConfig config = [] {
        EnvConfig out;
        const char *raw = std::getenv("MC_PACK_CACHE");
        if (!raw || !*raw)
            return out;
        out.present = true;
        const std::string text(raw);
        if (text == "off" || text == "OFF" || text == "0") {
            out.disabled = true;
            return out;
        }
        char *end = nullptr;
        const unsigned long long mb = std::strtoull(raw, &end, 10);
        if (end && *end == '\0' && mb > 0)
            out.capacityBytes =
                static_cast<std::size_t>(mb) * 1024 * 1024;
        return out;
    }();
    return config;
}

std::shared_ptr<void>
allocateAligned(std::size_t bytes)
{
    void *raw = ::operator new(bytes ? bytes : 1,
                               std::align_val_t{64});
    return std::shared_ptr<void>(raw, [](void *p) {
        ::operator delete(p, std::align_val_t{64});
    });
}

} // namespace

std::uint32_t
packFingerprint(const void *data, std::size_t bytes)
{
#ifdef MC_PACK_HW_CRC
    static const bool hw = __builtin_cpu_supports("sse4.2");
    if (hw)
        return crc32cFingerprint(
            static_cast<const unsigned char *>(data), bytes);
#endif
    return crc32(data, bytes);
}

std::size_t
PackKeyHash::operator()(const PackKey &key) const
{
    std::uint64_t h = hashCombine(
        kHashBasis, (static_cast<std::uint64_t>(key.kind) << 24) |
                        (static_cast<std::uint64_t>(key.srcType) << 16) |
                        (static_cast<std::uint64_t>(key.accType) << 8) |
                        key.tier);
    h = hashCombine(h, key.fingerprint);
    h = hashCombine(h, key.srcBytes);
    h = hashCombine(h, key.rows);
    h = hashCombine(h, key.cols);
    h = hashCombine(h, key.pad);
    return static_cast<std::size_t>(h);
}

PackCache::PackCache(std::size_t capacity_bytes)
    : _capacity(capacity_bytes)
{
}

std::shared_ptr<const PackEntry>
PackCache::findOrPack(const PackKey &key, std::size_t bytes,
                      const FillFn &fill)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _index.find(key);
        if (it != _index.end()) {
            ++_hits;
            _lru.splice(_lru.begin(), _lru, it->second);
            return it->second->second;
        }
        ++_misses;
    }

    // Stage outside the lock: packing a large panel must not serialize
    // against other threads' lookups.
    auto entry = std::make_shared<PackEntry>();
    entry->data = allocateAligned(bytes);
    entry->bytes = bytes;
    fill(entry->data.get());

    std::lock_guard<std::mutex> lock(_mutex);
    if (bytes > _capacity)
        return entry; // live but never retained
    auto it = _index.find(key);
    if (it != _index.end()) {
        // A racing filler won; serve its bytes (identical by the
        // bit-exactness contract) and drop ours.
        _lru.splice(_lru.begin(), _lru, it->second);
        return it->second->second;
    }
    _lru.emplace_front(key, entry);
    _index.emplace(key, _lru.begin());
    _resident += bytes;
    evictExcessLocked();
    return entry;
}

std::uint64_t
PackCache::hits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hits;
}

std::uint64_t
PackCache::misses() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _misses;
}

std::uint64_t
PackCache::evictions() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _evictions;
}

std::uint64_t
PackCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _resident;
}

std::size_t
PackCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _index.size();
}

std::size_t
PackCache::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _capacity;
}

void
PackCache::setCapacityBytes(std::size_t capacity_bytes)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _capacity = capacity_bytes;
    evictExcessLocked();
}

void
PackCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _lru.clear();
    _index.clear();
    _resident = 0;
    _hits = _misses = _evictions = 0;
}

void
PackCache::evictExcessLocked()
{
    while (_resident > _capacity && !_lru.empty()) {
        const auto &victim = _lru.back();
        mc_assert(_resident >= victim.second->bytes,
                  "pack cache byte accounting underflow");
        _resident -= victim.second->bytes;
        _index.erase(victim.first);
        _lru.pop_back();
        ++_evictions;
    }
}

PackCache &
PackCache::instance()
{
    static PackCache cache(envConfig().disabled
                               ? 0
                               : envConfig().capacityBytes);
    return cache;
}

bool
PackCache::enabled()
{
    const int forced = g_enabled_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    return !envConfig().disabled;
}

void
PackCache::setEnabled(bool enabled)
{
    g_enabled_override.store(enabled ? 1 : 0,
                             std::memory_order_relaxed);
}

namespace {
std::atomic<std::size_t> g_min_source_bytes{
    PackCache::kDefaultMinSourceBytes};
} // namespace

bool
PackCache::shouldCache(std::size_t src_bytes)
{
    return enabled() &&
           src_bytes >= g_min_source_bytes.load(std::memory_order_relaxed);
}

std::size_t
PackCache::minSourceBytes()
{
    return g_min_source_bytes.load(std::memory_order_relaxed);
}

void
PackCache::setMinSourceBytes(std::size_t bytes)
{
    g_min_source_bytes.store(bytes, std::memory_order_relaxed);
}

void
PackCache::configureCapacityMb(std::uint64_t mb)
{
    if (envConfig().present)
        return; // MC_PACK_CACHE wins, like MC_TUNE/MC_SIMD
    if (mb == 0) {
        setEnabled(false);
        return;
    }
    setEnabled(true);
    instance().setCapacityBytes(static_cast<std::size_t>(mb) * 1024 *
                                1024);
}

PackCacheStats
PackCache::globalStats()
{
    PackCacheStats stats;
    PackCache &cache = instance();
    std::lock_guard<std::mutex> lock(cache._mutex);
    stats.hits = cache._hits;
    stats.misses = cache._misses;
    stats.evictions = cache._evictions;
    stats.residentBytes = cache._resident;
    return stats;
}

} // namespace blas
} // namespace mc
