/**
 * @file
 * NEON tier (aarch64): 4 f32 / 2 f64 lanes. Uses vmulq + vaddq (never
 * vmlaq, which fuses) and is compiled -ffp-contract=off, so mul and
 * add round separately — the bit-exactness contract of
 * simd_vec_kernels.hh. vcvtnq converts with round-to-nearest-even
 * regardless of the FPCR rounding mode.
 */

#if defined(MC_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include "blas/simd_vec_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

struct NeonOps
{
    using VF = float32x4_t;
    using VD = float64x2_t;
    using VI = uint32x4_t;
    using Mask = uint32x4_t;
    static constexpr std::size_t kWidthF = 4;
    static constexpr std::size_t kWidthD = 2;

    static VF loadF(const float *p) { return vld1q_f32(p); }
    static void storeF(float *p, VF v) { vst1q_f32(p, v); }
    static VF set1F(float v) { return vdupq_n_f32(v); }
    static VF addF(VF a, VF b) { return vaddq_f32(a, b); }
    static VF subF(VF a, VF b) { return vsubq_f32(a, b); }
    static VF mulF(VF a, VF b) { return vmulq_f32(a, b); }

    static VD loadD(const double *p) { return vld1q_f64(p); }
    static void storeD(double *p, VD v) { vst1q_f64(p, v); }
    static VD set1D(double v) { return vdupq_n_f64(v); }
    static VD addD(VD a, VD b) { return vaddq_f64(a, b); }
    static VD subD(VD a, VD b) { return vsubq_f64(a, b); }
    static VD mulD(VD a, VD b) { return vmulq_f64(a, b); }

    static VI set1I(int v)
    {
        return vdupq_n_u32(static_cast<std::uint32_t>(v));
    }
    static VI andI(VI a, VI b) { return vandq_u32(a, b); }
    static VI orI(VI a, VI b) { return vorrq_u32(a, b); }
    static VI addI(VI a, VI b) { return vaddq_u32(a, b); }
    static VI subI(VI a, VI b) { return vsubq_u32(a, b); }
    template <int N> static VI srli(VI v) { return vshrq_n_u32(v, N); }
    template <int N> static VI slli(VI v) { return vshlq_n_u32(v, N); }
    // Unsigned compares match the x86 tiers' signed ones: every
    // compared value is < 2^31.
    static Mask cmpgtI(VI a, VI b) { return vcgtq_u32(a, b); }
    static Mask cmpeqI(VI a, VI b) { return vceqq_u32(a, b); }
    static VI blendI(VI a, VI b, Mask m) { return vbslq_u32(m, b, a); }
    static VI cvtF2I(VF v)
    {
        // Round-to-nearest-even convert, independent of FPCR.
        return vreinterpretq_u32_s32(vcvtnq_s32_f32(v));
    }
    static VF cvtI2F(VI v)
    {
        // Only small non-negative lane values reach this (exact).
        return vcvtq_f32_u32(v);
    }
    static VI castF2I(VF v) { return vreinterpretq_u32_f32(v); }
    static VF castI2F(VI v) { return vreinterpretq_f32_u32(v); }

    static VI loadU16(const std::uint16_t *p)
    {
        return vmovl_u16(vld1_u16(p));
    }
    static void storeU16(std::uint16_t *p, VI h)
    {
        vst1_u16(p, vmovn_u32(h));
    }
};

} // namespace

const SimdKernels &
neonSimdKernels()
{
    static const SimdKernels kernels =
        makeVecKernels<NeonOps>(SimdTier::Neon);
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc

#endif // MC_SIMD_HAVE_NEON
