/**
 * @file
 * Functional (numeric) GEMM execution paths.
 *
 * Two implementations of D <- alpha*A*B + beta*C exist so they can be
 * checked against each other:
 *  - referenceGemm: explicit accumulator semantics (including the
 *    per-step rounding a SIMD f16 FMA chain performs, which is how
 *    HGEMM really behaves on the VALU path);
 *  - tiledMatrixCoreGemm: the Matrix Core dataflow — 16x16 micro-tiles
 *    accumulated through executeMfma in the accumulator precision, with
 *    the alpha/beta scaling applied afterwards in the compute type,
 *    exactly as the library kernel does it.
 *
 * Both public entry points route through the blocked/packed/threaded
 * backend in fast_gemm.hh, which is bit-identical to the scalar loops
 * retained here as scalarReferenceGemm / scalarTiledMatrixCoreGemm
 * (the baseline the bit-exactness suite and mc_perf compare against).
 * See docs/PERF.md.
 */

#ifndef MC_BLAS_FUNCTIONAL_HH
#define MC_BLAS_FUNCTIONAL_HH

#include <cstddef>

#include "arch/mfma_exec.hh"
#include "arch/mfma_isa.hh"
#include "blas/fast_gemm.hh"
#include "common/logging.hh"
#include "common/matrix.hh"
#include "fp/traits.hh"

namespace mc {
namespace blas {

/**
 * Scalar reference GEMM: the original triple loop, kept as the
 * semantic ground truth the fast backend must match bit-for-bit.
 *
 * @tparam TCD storage type of C and D.
 * @tparam TAB storage type of A and B.
 * @tparam TAcc accumulator type of the dot product.
 * @param round_each_step round the accumulator back to TCD after every
 *        FMA (models a reduced-precision VALU FMA chain; only
 *        meaningful when TCD is narrower than TAcc).
 */
template <typename TCD, typename TAB, typename TAcc>
void
scalarReferenceGemm(double alpha, const Matrix<TAB> &a,
                    const Matrix<TAB> &b, double beta,
                    const Matrix<TCD> &c, Matrix<TCD> &d,
                    bool round_each_step = false)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    mc_assert(b.rows() == k, "GEMM inner dimensions disagree");
    mc_assert(c.rows() == m && c.cols() == n, "C shape mismatch");
    mc_assert(d.rows() == m && d.cols() == n, "D shape mismatch");

    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            TAcc acc = TAcc(0);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const TAcc av = static_cast<TAcc>(
                    fp::NumericTraits<TAB>::widen(a(i, kk)));
                const TAcc bv = static_cast<TAcc>(
                    fp::NumericTraits<TAB>::widen(b(kk, j)));
                acc += av * bv;
                if (round_each_step) {
                    acc = static_cast<TAcc>(fp::NumericTraits<TCD>::widen(
                        TCD(acc)));
                }
            }
            const TAcc scaled =
                static_cast<TAcc>(alpha) * acc +
                static_cast<TAcc>(beta) *
                    static_cast<TAcc>(
                        fp::NumericTraits<TCD>::widen(c(i, j)));
            d(i, j) = TCD(scaled);
        }
    }
}

/**
 * Reference GEMM entry point: fastReferenceGemm's blocked/packed/
 * threaded execution of the scalarReferenceGemm semantics (the two are
 * bit-identical; @p opts only tunes speed, or forces the scalar loop).
 */
template <typename TCD, typename TAB, typename TAcc>
void
referenceGemm(double alpha, const Matrix<TAB> &a, const Matrix<TAB> &b,
              double beta, const Matrix<TCD> &c, Matrix<TCD> &d,
              bool round_each_step = false,
              const FunctionalGemmOptions &opts = FunctionalGemmOptions())
{
    if (opts.forceScalar) {
        scalarReferenceGemm<TCD, TAB, TAcc>(alpha, a, b, beta, c, d,
                                            round_each_step);
        return;
    }
    fastReferenceGemm<TCD, TAB, TAcc>(alpha, a, b, beta, c, d,
                                      round_each_step, opts);
}

/**
 * Scalar tiled Matrix Core GEMM: pad to the instruction shape,
 * accumulate each 16x16 (or instruction-shaped) output tile across K
 * through executeMfma in @p TAcc precision, then apply the alpha/beta
 * pass. Kept as the ground truth for fastTiledMatrixCoreGemm.
 *
 * @tparam TAcc the Matrix Core accumulator type for this input type
 *         (float for f16/bf16/f32 inputs, double for f64).
 */
template <typename TCD, typename TAB, typename TAcc>
void
scalarTiledMatrixCoreGemm(const arch::MfmaInstruction &inst, double alpha,
                          const Matrix<TAB> &a, const Matrix<TAB> &b,
                          double beta, const Matrix<TCD> &c, Matrix<TCD> &d)
{
    mc_assert(inst.shape.blocks == 1,
              "the tiled path uses single-block instructions");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    mc_assert(b.rows() == k, "GEMM inner dimensions disagree");
    mc_assert(c.rows() == m && c.cols() == n, "C shape mismatch");
    mc_assert(d.rows() == m && d.cols() == n, "D shape mismatch");

    const int tm = inst.shape.m;
    const int tn = inst.shape.n;
    const int tk = inst.shape.k;

    // Zero-padded operand tiles, gathered per (tile, k-slice).
    std::vector<TAB> a_tile(static_cast<std::size_t>(tm) * tk);
    std::vector<TAB> b_tile(static_cast<std::size_t>(tk) * tn);
    std::vector<TAcc> acc_tile(static_cast<std::size_t>(tm) * tn);
    std::vector<TAcc> out_tile(static_cast<std::size_t>(tm) * tn);

    for (std::size_t i0 = 0; i0 < m; i0 += tm) {
        for (std::size_t j0 = 0; j0 < n; j0 += tn) {
            std::fill(acc_tile.begin(), acc_tile.end(), TAcc(0));
            for (std::size_t k0 = 0; k0 < k; k0 += tk) {
                for (int i = 0; i < tm; ++i) {
                    for (int kk = 0; kk < tk; ++kk) {
                        const std::size_t gi = i0 + i, gk = k0 + kk;
                        a_tile[static_cast<std::size_t>(i) * tk + kk] =
                            (gi < m && gk < k) ? a(gi, gk) : TAB(0.0f);
                    }
                }
                for (int kk = 0; kk < tk; ++kk) {
                    for (int j = 0; j < tn; ++j) {
                        const std::size_t gk = k0 + kk, gj = j0 + j;
                        b_tile[static_cast<std::size_t>(kk) * tn + j] =
                            (gk < k && gj < n) ? b(gk, gj) : TAB(0.0f);
                    }
                }
                arch::executeMfma<TAcc, TAB>(inst, a_tile.data(),
                                             b_tile.data(), acc_tile.data(),
                                             out_tile.data());
                acc_tile.swap(out_tile);
            }
            // Alpha/beta pass in the compute (accumulator) type.
            for (int i = 0; i < tm; ++i) {
                for (int j = 0; j < tn; ++j) {
                    const std::size_t gi = i0 + i, gj = j0 + j;
                    if (gi >= m || gj >= n)
                        continue;
                    const TAcc scaled =
                        static_cast<TAcc>(alpha) *
                            acc_tile[static_cast<std::size_t>(i) * tn + j] +
                        static_cast<TAcc>(beta) *
                            static_cast<TAcc>(
                                fp::NumericTraits<TCD>::widen(c(gi, gj)));
                    d(gi, gj) = TCD(scaled);
                }
            }
        }
    }
}

/**
 * Tiled Matrix Core GEMM entry point: the fast backend's execution of
 * the scalarTiledMatrixCoreGemm dataflow (bit-identical; @p opts only
 * tunes speed, or forces the scalar tile loop).
 */
template <typename TCD, typename TAB, typename TAcc>
void
tiledMatrixCoreGemm(const arch::MfmaInstruction &inst, double alpha,
                    const Matrix<TAB> &a, const Matrix<TAB> &b,
                    double beta, const Matrix<TCD> &c, Matrix<TCD> &d,
                    const FunctionalGemmOptions &opts =
                        FunctionalGemmOptions())
{
    if (opts.forceScalar) {
        scalarTiledMatrixCoreGemm<TCD, TAB, TAcc>(inst, alpha, a, b, beta,
                                                  c, d);
        return;
    }
    fastTiledMatrixCoreGemm<TCD, TAB, TAcc>(inst, alpha, a, b, beta, c, d,
                                            opts);
}

} // namespace blas
} // namespace mc

#endif // MC_BLAS_FUNCTIONAL_HH
