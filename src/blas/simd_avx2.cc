/**
 * @file
 * AVX2 tier: 8 f32 / 4 f64 lanes. Compiled -mavx2 with
 * -ffp-contract=off and *without* -mfma (see src/blas/CMakeLists.txt):
 * a contracted mul-add would skip the product rounding and break the
 * bit-exactness contract of simd_vec_kernels.hh.
 */

#if defined(MC_SIMD_HAVE_X86)

#include <immintrin.h>

#include "blas/simd_vec_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

struct Avx2Ops
{
    using VF = __m256;
    using VD = __m256d;
    using VI = __m256i;
    using Mask = __m256i;
    static constexpr std::size_t kWidthF = 8;
    static constexpr std::size_t kWidthD = 4;

    static VF loadF(const float *p) { return _mm256_loadu_ps(p); }
    static void storeF(float *p, VF v) { _mm256_storeu_ps(p, v); }
    static VF set1F(float v) { return _mm256_set1_ps(v); }
    static VF addF(VF a, VF b) { return _mm256_add_ps(a, b); }
    static VF subF(VF a, VF b) { return _mm256_sub_ps(a, b); }
    static VF mulF(VF a, VF b) { return _mm256_mul_ps(a, b); }

    static VD loadD(const double *p) { return _mm256_loadu_pd(p); }
    static void storeD(double *p, VD v) { _mm256_storeu_pd(p, v); }
    static VD set1D(double v) { return _mm256_set1_pd(v); }
    static VD addD(VD a, VD b) { return _mm256_add_pd(a, b); }
    static VD subD(VD a, VD b) { return _mm256_sub_pd(a, b); }
    static VD mulD(VD a, VD b) { return _mm256_mul_pd(a, b); }

    static VI set1I(int v) { return _mm256_set1_epi32(v); }
    static VI andI(VI a, VI b) { return _mm256_and_si256(a, b); }
    static VI orI(VI a, VI b) { return _mm256_or_si256(a, b); }
    static VI addI(VI a, VI b) { return _mm256_add_epi32(a, b); }
    static VI subI(VI a, VI b) { return _mm256_sub_epi32(a, b); }
    template <int N> static VI srli(VI v) { return _mm256_srli_epi32(v, N); }
    template <int N> static VI slli(VI v) { return _mm256_slli_epi32(v, N); }
    // Signed compares suffice: every compared value here is < 2^31.
    static Mask cmpgtI(VI a, VI b) { return _mm256_cmpgt_epi32(a, b); }
    static Mask cmpeqI(VI a, VI b) { return _mm256_cmpeq_epi32(a, b); }
    static VI blendI(VI a, VI b, Mask m)
    {
        return _mm256_blendv_epi8(a, b, m);
    }
    static VI cvtF2I(VF v) { return _mm256_cvtps_epi32(v); }
    static VF cvtI2F(VI v) { return _mm256_cvtepi32_ps(v); }
    static VI castF2I(VF v) { return _mm256_castps_si256(v); }
    static VF castI2F(VI v) { return _mm256_castsi256_ps(v); }

    static VI
    loadU16(const std::uint16_t *p)
    {
        return _mm256_cvtepu16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
    }
    static void
    storeU16(std::uint16_t *p, VI h)
    {
        // packus works per 128-bit lane; permute the packed quadwords
        // back into order. Lane values are <= 0xffff, so the unsigned
        // saturation is lossless.
        const __m256i packed = _mm256_packus_epi32(h, h);
        const __m256i ordered = _mm256_permute4x64_epi64(packed, 0x08);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p),
                         _mm256_castsi256_si128(ordered));
    }
};

} // namespace

const SimdKernels &
avx2SimdKernels()
{
    static const SimdKernels kernels =
        makeVecKernels<Avx2Ops>(SimdTier::Avx2);
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc

#endif // MC_SIMD_HAVE_X86
