/**
 * @file
 * The scalar tier: the retained PR-4 fast-path kernels (compiled -O3
 * in fast_gemm.cc) and the software conversion loops, wrapped into a
 * SimdKernels table. This is the baseline every vector tier must match
 * bit-for-bit, and the tier MC_SIMD=scalar pins for debugging.
 */

#include "blas/fast_gemm.hh"
#include "blas/simd_kernels.hh"
#include "fp/convert.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
axpyF32(const float *arow, const float *bpanel, std::size_t ldb,
        std::size_t nk, float *accs, std::size_t nj)
{
    axpyPanel<float>(arow, bpanel, ldb, nk, accs, nj);
}

void
axpySubF32(const float *arow, const float *bpanel, std::size_t ldb,
           std::size_t nk, float *accs, std::size_t nj)
{
    axpyPanelSub<float>(arow, bpanel, ldb, nk, accs, nj);
}

void
axpyRoundHalfF32(const float *arow, const float *bpanel, std::size_t ldb,
                 std::size_t nk, float *accs, std::size_t nj)
{
    axpyPanelRound<fp::Half, float>(arow, bpanel, ldb, nk, accs, nj);
}

void
axpyF64(const double *arow, const double *bpanel, std::size_t ldb,
        std::size_t nk, double *accs, std::size_t nj)
{
    axpyPanel<double>(arow, bpanel, ldb, nk, accs, nj);
}

void
axpySubF64(const double *arow, const double *bpanel, std::size_t ldb,
           std::size_t nk, double *accs, std::size_t nj)
{
    axpyPanelSub<double>(arow, bpanel, ldb, nk, accs, nj);
}

} // namespace

const SimdKernels &
scalarSimdKernels()
{
    static const SimdKernels kernels = {
        .tier = SimdTier::Scalar,
        .axpyF32 = axpyF32,
        .axpySubF32 = axpySubF32,
        .axpyRoundHalfF32 = axpyRoundHalfF32,
        .axpyF64 = axpyF64,
        .axpySubF64 = axpySubF64,
        .widenHalfToF32 = fp::widenHalfBits,
        .widenBf16ToF32 = fp::widenBf16Bits,
        .narrowF32ToHalf = fp::narrowToHalfBits,
        .narrowF32ToBf16 = fp::narrowToBf16Bits,
    };
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
