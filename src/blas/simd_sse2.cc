/**
 * @file
 * SSE2 tier: 4 f32 / 2 f64 lanes. Compiled with -ffp-contract=off and
 * no FMA flag (see src/blas/CMakeLists.txt) so mul and add round
 * separately — the bit-exactness contract of simd_vec_kernels.hh.
 * SSE2 is the x86-64 baseline, so this tier is always available there.
 */

#if defined(MC_SIMD_HAVE_X86)

#include <emmintrin.h>

#include "blas/simd_vec_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

struct Sse2Ops
{
    using VF = __m128;
    using VD = __m128d;
    using VI = __m128i;
    using Mask = __m128i;
    static constexpr std::size_t kWidthF = 4;
    static constexpr std::size_t kWidthD = 2;

    static VF loadF(const float *p) { return _mm_loadu_ps(p); }
    static void storeF(float *p, VF v) { _mm_storeu_ps(p, v); }
    static VF set1F(float v) { return _mm_set1_ps(v); }
    static VF addF(VF a, VF b) { return _mm_add_ps(a, b); }
    static VF subF(VF a, VF b) { return _mm_sub_ps(a, b); }
    static VF mulF(VF a, VF b) { return _mm_mul_ps(a, b); }

    static VD loadD(const double *p) { return _mm_loadu_pd(p); }
    static void storeD(double *p, VD v) { _mm_storeu_pd(p, v); }
    static VD set1D(double v) { return _mm_set1_pd(v); }
    static VD addD(VD a, VD b) { return _mm_add_pd(a, b); }
    static VD subD(VD a, VD b) { return _mm_sub_pd(a, b); }
    static VD mulD(VD a, VD b) { return _mm_mul_pd(a, b); }

    static VI set1I(int v) { return _mm_set1_epi32(v); }
    static VI andI(VI a, VI b) { return _mm_and_si128(a, b); }
    static VI orI(VI a, VI b) { return _mm_or_si128(a, b); }
    static VI addI(VI a, VI b) { return _mm_add_epi32(a, b); }
    static VI subI(VI a, VI b) { return _mm_sub_epi32(a, b); }
    template <int N> static VI srli(VI v) { return _mm_srli_epi32(v, N); }
    template <int N> static VI slli(VI v) { return _mm_slli_epi32(v, N); }
    // Signed compares suffice: every compared value here is < 2^31.
    static Mask cmpgtI(VI a, VI b) { return _mm_cmpgt_epi32(a, b); }
    static Mask cmpeqI(VI a, VI b) { return _mm_cmpeq_epi32(a, b); }
    static VI blendI(VI a, VI b, Mask m)
    {
        return _mm_or_si128(_mm_andnot_si128(m, a), _mm_and_si128(m, b));
    }
    static VI cvtF2I(VF v) { return _mm_cvtps_epi32(v); }
    static VF cvtI2F(VI v) { return _mm_cvtepi32_ps(v); }
    static VI castF2I(VF v) { return _mm_castps_si128(v); }
    static VF castI2F(VI v) { return _mm_castsi128_ps(v); }

    static VI
    loadU16(const std::uint16_t *p)
    {
        const __m128i raw =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
        return _mm_unpacklo_epi16(raw, _mm_setzero_si128());
    }
    static void
    storeU16(std::uint16_t *p, VI h)
    {
        // SSE2 has no unsigned 32->16 pack: bias into the signed
        // range, pack with signed saturation (lossless after the
        // bias), and un-bias the packed halves.
        const __m128i biased = _mm_sub_epi32(h, _mm_set1_epi32(0x8000));
        const __m128i packed = _mm_packs_epi32(biased, biased);
        const __m128i fixed = _mm_xor_si128(
            packed, _mm_set1_epi16(static_cast<short>(0x8000)));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(p), fixed);
    }
};

} // namespace

const SimdKernels &
sse2SimdKernels()
{
    static const SimdKernels kernels =
        makeVecKernels<Sse2Ops>(SimdTier::Sse2);
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc

#endif // MC_SIMD_HAVE_X86
