#include "verify.hh"

#include <cmath>
#include <sstream>

#include "blas/functional.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace mc {
namespace blas {

namespace {

/** Per-combo tolerance: storage precision drives the bound. */
double
toleranceFor(GemmCombo combo, std::size_t k)
{
    const double growth = std::sqrt(static_cast<double>(k));
    switch (combo) {
      case GemmCombo::Dgemm: return 1e-12 * growth;
      case GemmCombo::Sgemm: return 1e-5 * growth;
      case GemmCombo::Hss: return 2e-3 * growth;
      case GemmCombo::Hhs: return 5e-3 * growth;
      case GemmCombo::Hgemm: return 1e-2 * growth;
    }
    return 1e-3 * growth;
}

template <typename T>
void
fillScheme(Matrix<T> &m, VerifyScheme scheme, bool identity, Rng &rng)
{
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        if (identity)
            m.setIdentity();
        else
            m.fill(T(1.0f));
        return;
    }
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/**
 * Run one combo functionally: build operands, execute through the
 * engine-selected path, compare against the scalar reference.
 */
template <typename TCD, typename TAB, typename TAcc>
VerifyResult
runTyped(const GemmConfig &config, const GemmPlan &plan,
         VerifyScheme scheme, std::uint64_t seed, bool round_each_step)
{
    Rng rng(seed);
    Matrix<TAB> a(config.m, config.k);
    Matrix<TAB> b(config.k, config.n);
    Matrix<TCD> c(config.m, config.n);
    fillScheme(a, scheme, false, rng);
    fillScheme(b, scheme, true, rng);
    fillScheme(c, scheme, false, rng);

    Matrix<TCD> d_ref(config.m, config.n);
    referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta, c,
                                  d_ref, round_each_step);

    Matrix<TCD> d_run(config.m, config.n);
    if (plan.useMatrixCores) {
        tiledMatrixCoreGemm<TCD, TAB, TAcc>(*plan.inst, config.alpha, a,
                                            b, config.beta, c, d_run);
    } else {
        // The SIMD path is the reference computation itself; re-run it
        // so path selection is still exercised end to end.
        referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta,
                                      c, d_run, round_each_step);
    }

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.tolerance = toleranceFor(config.combo, config.k);
    for (std::size_t i = 0; i < config.m; ++i) {
        for (std::size_t j = 0; j < config.n; ++j) {
            const double got = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_run(i, j)));
            const double want = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_ref(i, j)));
            result.maxAbsError =
                std::max(result.maxAbsError, std::fabs(got - want));
        }
    }

    // The paper's scheme has a closed-form expectation: check it too.
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        const double expect = config.alpha + config.beta;
        double max_dev = 0.0;
        for (std::size_t i = 0; i < config.m; ++i) {
            // D = alpha*A*B + beta*C = alpha*(ones x I) + beta*ones;
            // only the leading min(k, n) columns receive the A*B term.
            for (std::size_t j = 0; j < config.n; ++j) {
                const double want =
                    (j < config.k) ? expect : config.beta;
                const double got = static_cast<double>(
                    fp::NumericTraits<TCD>::widen(d_run(i, j)));
                max_dev = std::max(max_dev, std::fabs(got - want));
            }
        }
        result.maxAbsError = std::max(result.maxAbsError, max_dev);
    }

    result.passed = result.maxAbsError <= result.tolerance;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << config.m << "x"
           << config.n << "x" << config.k << " via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " path: max |err| = " << result.maxAbsError
           << " (tol " << result.tolerance << ")";
    result.detail = detail.str();
    return result;
}

} // namespace

VerifyResult
verifyGemm(const GemmConfig &config, VerifyScheme scheme,
           std::uint64_t seed, const PlannerOptions &opts)
{
    mc_assert(config.m * config.n * config.k <= (1ull << 32),
              "verifyGemm is a host-side O(n^3) check; problem too "
              "large");
    const GemmPlan plan = planGemm(config, arch::defaultCdna2(), opts);

    switch (config.combo) {
      case GemmCombo::Dgemm:
        return runTyped<double, double, double>(config, plan, scheme,
                                                seed, false);
      case GemmCombo::Sgemm:
        return runTyped<float, float, float>(config, plan, scheme, seed,
                                             false);
      case GemmCombo::Hgemm:
        // SIMD f16 FMA chain rounds every step.
        return runTyped<fp::Half, fp::Half, float>(config, plan, scheme,
                                                   seed, true);
      case GemmCombo::Hhs:
        return runTyped<fp::Half, fp::Half, float>(config, plan, scheme,
                                                   seed, false);
      case GemmCombo::Hss:
        return runTyped<float, fp::Half, float>(config, plan, scheme,
                                                seed, false);
    }
    mc_panic("unreachable combo in verifyGemm");
}

} // namespace blas
} // namespace mc
