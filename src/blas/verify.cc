#include "verify.hh"

#include <cmath>
#include <sstream>

#include "blas/functional.hh"
#include "blas/int8_gemm.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace mc {
namespace blas {

namespace {

/** Per-combo tolerance: storage precision drives the bound. */
double
toleranceFor(GemmCombo combo, std::size_t k)
{
    const double growth = std::sqrt(static_cast<double>(k));
    switch (combo) {
      case GemmCombo::Dgemm: return 1e-12 * growth;
      case GemmCombo::Sgemm: return 1e-5 * growth;
      case GemmCombo::Hss: return 2e-3 * growth;
      case GemmCombo::Hhs: return 5e-3 * growth;
      case GemmCombo::Hgemm: return 1e-2 * growth;
      case GemmCombo::I8gemm: return 0.0; // exact-match contract
    }
    return 1e-3 * growth;
}

template <typename T>
void
fillScheme(Matrix<T> &m, VerifyScheme scheme, bool identity, Rng &rng)
{
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        if (identity)
            m.setIdentity();
        else
            m.fill(T(1.0f));
        return;
    }
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/**
 * Run one combo functionally: build operands, execute through the
 * engine-selected path, compare against the reference computation.
 */
template <typename TCD, typename TAB, typename TAcc>
VerifyResult
runTyped(const GemmConfig &config, const GemmPlan &plan,
         VerifyScheme scheme, std::uint64_t seed, bool round_each_step,
         const FunctionalGemmOptions &func)
{
    Rng rng(seed);
    Matrix<TAB> a(config.m, config.k);
    Matrix<TAB> b(config.k, config.n);
    Matrix<TCD> c(config.m, config.n);
    fillScheme(a, scheme, false, rng);
    fillScheme(b, scheme, true, rng);
    fillScheme(c, scheme, false, rng);

    Matrix<TCD> d_ref(config.m, config.n);
    referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta, c,
                                  d_ref, round_each_step, func);

    Matrix<TCD> d_run(config.m, config.n);
    if (plan.useMatrixCores) {
        tiledMatrixCoreGemm<TCD, TAB, TAcc>(*plan.inst, config.alpha, a,
                                            b, config.beta, c, d_run,
                                            func);
    } else {
        // The SIMD path is the reference computation itself; re-run it
        // so path selection is still exercised end to end.
        referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta,
                                      c, d_run, round_each_step, func);
    }

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.tolerance = toleranceFor(config.combo, config.k);
    auto record = [&result](double got, double want, std::uint64_t ulp,
                            std::size_t i, std::size_t j) {
        const double err = std::fabs(got - want);
        if (err > result.maxAbsError) {
            result.maxAbsError = err;
            result.errorRow = i;
            result.errorCol = j;
        }
        result.maxUlp = std::max(result.maxUlp, ulp);
    };
    for (std::size_t i = 0; i < config.m; ++i) {
        for (std::size_t j = 0; j < config.n; ++j) {
            const double got = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_run(i, j)));
            const double want = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_ref(i, j)));
            record(got, want, fp::ulpDistance(d_run(i, j), d_ref(i, j)),
                   i, j);
        }
    }

    // The paper's scheme has a closed-form expectation: check it too.
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        const double expect = config.alpha + config.beta;
        for (std::size_t i = 0; i < config.m; ++i) {
            // D = alpha*A*B + beta*C = alpha*(ones x I) + beta*ones;
            // only the leading min(k, n) columns receive the A*B term.
            for (std::size_t j = 0; j < config.n; ++j) {
                const double want =
                    (j < config.k) ? expect : config.beta;
                const TCD want_cd = TCD(want);
                const double got = static_cast<double>(
                    fp::NumericTraits<TCD>::widen(d_run(i, j)));
                record(got, want, fp::ulpDistance(d_run(i, j), want_cd),
                       i, j);
            }
        }
    }

    result.passed = result.maxAbsError <= result.tolerance;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << config.m << "x"
           << config.n << "x" << config.k << " via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " path: max |err| = " << result.maxAbsError << " at ("
           << result.errorRow << ", " << result.errorCol << "), max ULP = ";
    if (result.maxUlp == fp::kUlpNan)
        detail << "NaN";
    else
        detail << result.maxUlp;
    detail << " (tol " << result.tolerance << ")";
    result.detail = detail.str();
    return result;
}

/**
 * The quantized INT8 combo verifies to *zero* tolerance: integer
 * accumulation is exact and the requantize rounding is shared code,
 * so the fast path must reproduce the scalar reference bit for bit
 * (docs/PERF.md "Integer kernels"). Any nonzero difference fails.
 */
VerifyResult
runI8(const GemmConfig &config, const GemmPlan &plan, VerifyScheme scheme,
      std::uint64_t seed, const FunctionalGemmOptions &func)
{
    Rng rng(seed);
    Matrix<std::int8_t> a(config.m, config.k);
    Matrix<std::int8_t> b(config.k, config.n);
    Matrix<std::int8_t> c(config.m, config.n);
    auto fill = [&](Matrix<std::int8_t> &m, bool identity) {
        if (scheme == VerifyScheme::PaperOnesIdentity) {
            if (identity)
                m.setIdentity();
            else
                m.fill(std::int8_t{1});
            return;
        }
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                m(i, j) = static_cast<std::int8_t>(
                    std::lround(rng.uniform(-128.0, 127.0)));
    };
    fill(a, false);
    fill(b, true);
    fill(c, false);

    const QuantParams &qp = config.quant;
    Matrix<std::int8_t> d_ref(config.m, config.n);
    scalarQuantizedGemm(config.alpha, a, b, config.beta, c, d_ref, qp);
    // The plan's Matrix Core decision only drives the *simulated*
    // execution; host verification always exercises the functional
    // fast path against the scalar reference.
    Matrix<std::int8_t> d_run(config.m, config.n);
    fastQuantizedGemm(config.alpha, a, b, config.beta, c, d_run, qp,
                      func);

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.tolerance = 0.0;
    auto record = [&result](std::int8_t got, std::int8_t want,
                            std::size_t i, std::size_t j) {
        const double err = std::fabs(static_cast<double>(got) -
                                     static_cast<double>(want));
        if (err > result.maxAbsError) {
            result.maxAbsError = err;
            result.errorRow = i;
            result.errorCol = j;
        }
        result.maxUlp =
            std::max(result.maxUlp, static_cast<std::uint64_t>(err));
    };
    for (std::size_t i = 0; i < config.m; ++i)
        for (std::size_t j = 0; j < config.n; ++j)
            record(d_run(i, j), d_ref(i, j), i, j);

    // The paper scheme has a closed-form accumulator: with A all-ones
    // and B the identity, acc(i,j) = (1 - zeroA)*((j < k) - k*zeroB),
    // so the expected output is one requantize call away.
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        const double eff = effectiveQuantScale(config.alpha, qp);
        for (std::size_t i = 0; i < config.m; ++i) {
            for (std::size_t j = 0; j < config.n; ++j) {
                const std::int32_t hit = (j < config.k) ? 1 : 0;
                const std::int32_t acc =
                    (1 - qp.zeroA) *
                    (hit - static_cast<std::int32_t>(config.k) * qp.zeroB);
                const std::int8_t want = requantizeI8(
                    acc, eff, config.beta, std::int8_t{1}, qp);
                record(d_run(i, j), want, i, j);
            }
        }
    }

    result.passed = result.maxAbsError == 0.0;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << config.m << "x"
           << config.n << "x" << config.k << " via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " path: exact-match check, max |err| = "
           << result.maxAbsError << " at (" << result.errorRow << ", "
           << result.errorCol << ") (tol 0)";
    result.detail = detail.str();
    return result;
}

} // namespace

VerifyResult
verifyGemm(const GemmConfig &config, VerifyScheme scheme,
           std::uint64_t seed, const PlannerOptions &opts,
           const FunctionalGemmOptions &func)
{
    // The blocked backend makes N = 4096 (2^36 multiply-adds)
    // practical; the cap only guards against accidentally feeding a
    // 65536-class sweep point into an O(n^3) host check.
    mc_assert(config.m * config.n * config.k <= (1ull << 37),
              "verifyGemm is a host-side O(n^3) check; problem too "
              "large");
    const GemmPlan plan = planGemm(config, arch::defaultCdna2(), opts);

    switch (config.combo) {
      case GemmCombo::Dgemm:
        return runTyped<double, double, double>(config, plan, scheme,
                                                seed, false, func);
      case GemmCombo::Sgemm:
        return runTyped<float, float, float>(config, plan, scheme, seed,
                                             false, func);
      case GemmCombo::Hgemm:
        // SIMD f16 FMA chain rounds every step.
        return runTyped<fp::Half, fp::Half, float>(config, plan, scheme,
                                                   seed, true, func);
      case GemmCombo::Hhs:
        return runTyped<fp::Half, fp::Half, float>(config, plan, scheme,
                                                   seed, false, func);
      case GemmCombo::Hss:
        return runTyped<float, fp::Half, float>(config, plan, scheme,
                                                seed, false, func);
      case GemmCombo::I8gemm:
        return runI8(config, plan, scheme, seed, func);
    }
    mc_panic("unreachable combo in verifyGemm");
}

} // namespace blas
} // namespace mc
