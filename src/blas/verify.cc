#include "verify.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "blas/batched_gemm.hh"
#include "blas/functional.hh"
#include "blas/int8_gemm.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace mc {
namespace blas {

namespace {

/** Per-combo tolerance: storage precision drives the bound. */
double
toleranceFor(GemmCombo combo, std::size_t k)
{
    const double growth = std::sqrt(static_cast<double>(k));
    switch (combo) {
      case GemmCombo::Dgemm: return 1e-12 * growth;
      case GemmCombo::Sgemm: return 1e-5 * growth;
      case GemmCombo::Hss: return 2e-3 * growth;
      case GemmCombo::Hhs: return 5e-3 * growth;
      case GemmCombo::Hgemm: return 1e-2 * growth;
      case GemmCombo::I8gemm: return 0.0; // exact-match contract
    }
    return 1e-3 * growth;
}

template <typename T>
void
fillScheme(Matrix<T> &m, VerifyScheme scheme, bool identity, Rng &rng)
{
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        if (identity)
            m.setIdentity();
        else
            m.fill(T(1.0f));
        return;
    }
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/**
 * Run one combo functionally: build operands, execute through the
 * engine-selected path, compare against the reference computation.
 */
template <typename TCD, typename TAB, typename TAcc>
VerifyResult
runTyped(const GemmConfig &config, const GemmPlan &plan,
         VerifyScheme scheme, std::uint64_t seed, bool round_each_step,
         const FunctionalGemmOptions &func)
{
    Rng rng(seed);
    Matrix<TAB> a(config.m, config.k);
    Matrix<TAB> b(config.k, config.n);
    Matrix<TCD> c(config.m, config.n);
    fillScheme(a, scheme, false, rng);
    fillScheme(b, scheme, true, rng);
    fillScheme(c, scheme, false, rng);

    Matrix<TCD> d_ref(config.m, config.n);
    referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta, c,
                                  d_ref, round_each_step, func);

    Matrix<TCD> d_run(config.m, config.n);
    if (plan.useMatrixCores) {
        tiledMatrixCoreGemm<TCD, TAB, TAcc>(*plan.inst, config.alpha, a,
                                            b, config.beta, c, d_run,
                                            func);
    } else {
        // The SIMD path is the reference computation itself; re-run it
        // so path selection is still exercised end to end.
        referenceGemm<TCD, TAB, TAcc>(config.alpha, a, b, config.beta,
                                      c, d_run, round_each_step, func);
    }

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.tolerance = toleranceFor(config.combo, config.k);
    auto record = [&result](double got, double want, std::uint64_t ulp,
                            std::size_t i, std::size_t j) {
        const double err = std::fabs(got - want);
        if (err > result.maxAbsError) {
            result.maxAbsError = err;
            result.errorRow = i;
            result.errorCol = j;
        }
        result.maxUlp = std::max(result.maxUlp, ulp);
    };
    for (std::size_t i = 0; i < config.m; ++i) {
        for (std::size_t j = 0; j < config.n; ++j) {
            const double got = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_run(i, j)));
            const double want = static_cast<double>(
                fp::NumericTraits<TCD>::widen(d_ref(i, j)));
            record(got, want, fp::ulpDistance(d_run(i, j), d_ref(i, j)),
                   i, j);
        }
    }

    // The paper's scheme has a closed-form expectation: check it too.
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        const double expect = config.alpha + config.beta;
        for (std::size_t i = 0; i < config.m; ++i) {
            // D = alpha*A*B + beta*C = alpha*(ones x I) + beta*ones;
            // only the leading min(k, n) columns receive the A*B term.
            for (std::size_t j = 0; j < config.n; ++j) {
                const double want =
                    (j < config.k) ? expect : config.beta;
                const TCD want_cd = TCD(want);
                const double got = static_cast<double>(
                    fp::NumericTraits<TCD>::widen(d_run(i, j)));
                record(got, want, fp::ulpDistance(d_run(i, j), want_cd),
                       i, j);
            }
        }
    }

    result.passed = result.maxAbsError <= result.tolerance;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << config.m << "x"
           << config.n << "x" << config.k << " via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " path: max |err| = " << result.maxAbsError << " at ("
           << result.errorRow << ", " << result.errorCol << "), max ULP = ";
    if (result.maxUlp == fp::kUlpNan)
        detail << "NaN";
    else
        detail << result.maxUlp;
    detail << " (tol " << result.tolerance << ")";
    result.detail = detail.str();
    return result;
}

/**
 * The quantized INT8 combo verifies to *zero* tolerance: integer
 * accumulation is exact and the requantize rounding is shared code,
 * so the fast path must reproduce the scalar reference bit for bit
 * (docs/PERF.md "Integer kernels"). Any nonzero difference fails.
 */
VerifyResult
runI8(const GemmConfig &config, const GemmPlan &plan, VerifyScheme scheme,
      std::uint64_t seed, const FunctionalGemmOptions &func)
{
    Rng rng(seed);
    Matrix<std::int8_t> a(config.m, config.k);
    Matrix<std::int8_t> b(config.k, config.n);
    Matrix<std::int8_t> c(config.m, config.n);
    auto fill = [&](Matrix<std::int8_t> &m, bool identity) {
        if (scheme == VerifyScheme::PaperOnesIdentity) {
            if (identity)
                m.setIdentity();
            else
                m.fill(std::int8_t{1});
            return;
        }
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                m(i, j) = static_cast<std::int8_t>(
                    std::lround(rng.uniform(-128.0, 127.0)));
    };
    fill(a, false);
    fill(b, true);
    fill(c, false);

    const QuantParams &qp = config.quant;
    Matrix<std::int8_t> d_ref(config.m, config.n);
    scalarQuantizedGemm(config.alpha, a, b, config.beta, c, d_ref, qp);
    // The plan's Matrix Core decision only drives the *simulated*
    // execution; host verification always exercises the functional
    // fast path against the scalar reference.
    Matrix<std::int8_t> d_run(config.m, config.n);
    fastQuantizedGemm(config.alpha, a, b, config.beta, c, d_run, qp,
                      func);

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.tolerance = 0.0;
    auto record = [&result](std::int8_t got, std::int8_t want,
                            std::size_t i, std::size_t j) {
        const double err = std::fabs(static_cast<double>(got) -
                                     static_cast<double>(want));
        if (err > result.maxAbsError) {
            result.maxAbsError = err;
            result.errorRow = i;
            result.errorCol = j;
        }
        result.maxUlp =
            std::max(result.maxUlp, static_cast<std::uint64_t>(err));
    };
    for (std::size_t i = 0; i < config.m; ++i)
        for (std::size_t j = 0; j < config.n; ++j)
            record(d_run(i, j), d_ref(i, j), i, j);

    // The paper scheme has a closed-form accumulator: with A all-ones
    // and B the identity, acc(i,j) = (1 - zeroA)*((j < k) - k*zeroB),
    // so the expected output is one requantize call away.
    if (scheme == VerifyScheme::PaperOnesIdentity) {
        const double eff = effectiveQuantScale(config.alpha, qp);
        for (std::size_t i = 0; i < config.m; ++i) {
            for (std::size_t j = 0; j < config.n; ++j) {
                const std::int32_t hit = (j < config.k) ? 1 : 0;
                const std::int32_t acc =
                    (1 - qp.zeroA) *
                    (hit - static_cast<std::int32_t>(config.k) * qp.zeroB);
                const std::int8_t want = requantizeI8(
                    acc, eff, config.beta, std::int8_t{1}, qp);
                record(d_run(i, j), want, i, j);
            }
        }
    }

    result.passed = result.maxAbsError == 0.0;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << config.m << "x"
           << config.n << "x" << config.k << " via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " path: exact-match check, max |err| = "
           << result.maxAbsError << " at (" << result.errorRow << ", "
           << result.errorCol << ") (tol 0)";
    result.detail = detail.str();
    return result;
}

/**
 * Batched verification: @p entries distinct (A, C) slices against a
 * shared stride-0 B (the broadcast-weights convention of the batched
 * extension study), executed through the strided-batched drivers and
 * checked per entry against the per-call reference path.
 */
template <typename TCD, typename TAB, typename TAcc>
VerifyResult
runTypedBatched(const GemmConfig &config, const GemmPlan &plan,
                VerifyScheme scheme, std::uint64_t seed,
                bool round_each_step, const FunctionalGemmOptions &func,
                std::size_t entries)
{
    const std::size_t m = config.m, n = config.n, k = config.k;
    const std::size_t sa = m * k, sc = m * n;
    Rng rng(seed);

    Matrix<TAB> b(k, n);
    fillScheme(b, scheme, true, rng);
    std::vector<TAB> abuf(entries * sa);
    std::vector<TCD> cbuf(entries * sc);
    std::vector<TCD> dref(entries * sc);
    Matrix<TAB> ae(m, k);
    Matrix<TCD> ce(m, n), de(m, n);
    for (std::size_t e = 0; e < entries; ++e) {
        fillScheme(ae, scheme, false, rng);
        fillScheme(ce, scheme, false, rng);
        std::copy_n(ae.data(), sa, abuf.data() + e * sa);
        std::copy_n(ce.data(), sc, cbuf.data() + e * sc);
        referenceGemm<TCD, TAB, TAcc>(config.alpha, ae, b, config.beta,
                                      ce, de, round_each_step, func);
        std::copy_n(de.data(), sc, dref.data() + e * sc);
    }

    std::vector<TCD> drun(entries * sc);
    if (func.forceScalar) {
        // forceScalar pins every path to the scalar loops; the batched
        // drivers are fast-path-only, so replay per entry instead.
        for (std::size_t e = 0; e < entries; ++e) {
            std::copy_n(abuf.data() + e * sa, sa, ae.data());
            std::copy_n(cbuf.data() + e * sc, sc, ce.data());
            referenceGemm<TCD, TAB, TAcc>(config.alpha, ae, b,
                                          config.beta, ce, de,
                                          round_each_step, func);
            std::copy_n(de.data(), sc, drun.data() + e * sc);
        }
    } else if (plan.useMatrixCores) {
        fastBatchedTiledMatrixCoreGemm<TCD, TAB, TAcc>(
            *plan.inst, entries, config.alpha, abuf.data(), sa, b.data(),
            0, config.beta, cbuf.data(), sc, drun.data(), sc, m, n, k,
            func);
    } else {
        fastBatchedGemm<TCD, TAB, TAcc>(
            entries, config.alpha, abuf.data(), sa, b.data(), 0,
            config.beta, cbuf.data(), sc, drun.data(), sc, m, n, k,
            round_each_step, func);
    }

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores && !func.forceScalar;
    result.batchEntries = entries;
    result.tolerance = toleranceFor(config.combo, k);
    auto record = [&result](double got, double want, std::uint64_t ulp,
                            std::size_t i, std::size_t j) {
        const double err = std::fabs(got - want);
        if (err > result.maxAbsError) {
            result.maxAbsError = err;
            result.errorRow = i;
            result.errorCol = j;
        }
        result.maxUlp = std::max(result.maxUlp, ulp);
    };
    const double expect = config.alpha + config.beta;
    for (std::size_t e = 0; e < entries; ++e) {
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const TCD got_cd = drun[e * sc + i * n + j];
                const TCD ref_cd = dref[e * sc + i * n + j];
                const double got = static_cast<double>(
                    fp::NumericTraits<TCD>::widen(got_cd));
                record(got,
                       static_cast<double>(
                           fp::NumericTraits<TCD>::widen(ref_cd)),
                       fp::ulpDistance(got_cd, ref_cd), i, j);
                if (scheme == VerifyScheme::PaperOnesIdentity) {
                    // Same closed form as the single-entry check; every
                    // entry carries identical paper-scheme operands.
                    const double want = (j < k) ? expect : config.beta;
                    record(got, want,
                           fp::ulpDistance(got_cd, TCD(want)), i, j);
                }
            }
        }
    }

    result.passed = result.maxAbsError <= result.tolerance;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << m << "x" << n << "x"
           << k << " batch " << entries << " (of " << config.batchCount
           << ") via "
           << (result.usedMatrixCores ? "MatrixCore" : "SIMD")
           << " strided-batched path: max |err| = " << result.maxAbsError
           << " at (" << result.errorRow << ", " << result.errorCol
           << "), max ULP = ";
    if (result.maxUlp == fp::kUlpNan)
        detail << "NaN";
    else
        detail << result.maxUlp;
    detail << " (tol " << result.tolerance << ")";
    result.detail = detail.str();
    return result;
}

/** Batched INT8 verification: exact-match per entry against the scalar
 *  reference, run through fastBatchedQuantizedGemm with shared B. */
VerifyResult
runI8Batched(const GemmConfig &config, const GemmPlan &plan,
             VerifyScheme scheme, std::uint64_t seed,
             const FunctionalGemmOptions &func, std::size_t entries)
{
    const std::size_t m = config.m, n = config.n, k = config.k;
    const std::size_t sa = m * k, sc = m * n;
    Rng rng(seed);
    auto fill = [&](Matrix<std::int8_t> &mat, bool identity) {
        if (scheme == VerifyScheme::PaperOnesIdentity) {
            if (identity)
                mat.setIdentity();
            else
                mat.fill(std::int8_t{1});
            return;
        }
        for (std::size_t i = 0; i < mat.rows(); ++i)
            for (std::size_t j = 0; j < mat.cols(); ++j)
                mat(i, j) = static_cast<std::int8_t>(
                    std::lround(rng.uniform(-128.0, 127.0)));
    };

    const QuantParams &qp = config.quant;
    Matrix<std::int8_t> b(k, n);
    fill(b, true);
    std::vector<std::int8_t> abuf(entries * sa);
    std::vector<std::int8_t> cbuf(entries * sc);
    std::vector<std::int8_t> dref(entries * sc);
    Matrix<std::int8_t> ae(m, k), ce(m, n), de(m, n);
    for (std::size_t e = 0; e < entries; ++e) {
        fill(ae, false);
        fill(ce, false);
        std::copy_n(ae.data(), sa, abuf.data() + e * sa);
        std::copy_n(ce.data(), sc, cbuf.data() + e * sc);
        scalarQuantizedGemm(config.alpha, ae, b, config.beta, ce, de, qp);
        std::copy_n(de.data(), sc, dref.data() + e * sc);
    }

    std::vector<std::int8_t> drun(entries * sc);
    fastBatchedQuantizedGemm(entries, config.alpha, abuf.data(), sa,
                             b.data(), 0, config.beta, cbuf.data(), sc,
                             drun.data(), sc, m, n, k, qp, func);

    VerifyResult result;
    result.usedMatrixCores = plan.useMatrixCores;
    result.batchEntries = entries;
    result.tolerance = 0.0;
    for (std::size_t e = 0; e < entries; ++e) {
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const double err = std::fabs(
                    static_cast<double>(drun[e * sc + i * n + j]) -
                    static_cast<double>(dref[e * sc + i * n + j]));
                if (err > result.maxAbsError) {
                    result.maxAbsError = err;
                    result.errorRow = i;
                    result.errorCol = j;
                }
                result.maxUlp = std::max(
                    result.maxUlp, static_cast<std::uint64_t>(err));
            }
        }
    }

    result.passed = result.maxAbsError == 0.0;
    std::ostringstream detail;
    detail << comboInfo(config.combo).name << " " << m << "x" << n << "x"
           << k << " batch " << entries << " (of " << config.batchCount
           << ") via "
           << (plan.useMatrixCores ? "MatrixCore" : "SIMD")
           << " strided-batched path: exact-match check, max |err| = "
           << result.maxAbsError << " at (" << result.errorRow << ", "
           << result.errorCol << ") (tol 0)";
    result.detail = detail.str();
    return result;
}

} // namespace

VerifyResult
verifyGemm(const GemmConfig &config, VerifyScheme scheme,
           std::uint64_t seed, const PlannerOptions &opts,
           const FunctionalGemmOptions &func)
{
    // Batched problems verify a capped number of distinct entries
    // through the strided-batched drivers (batch counts reach 1024 in
    // the sweeps; checking them all would multiply the O(n^3) host
    // cost for no added path coverage).
    const std::size_t entries =
        config.batchCount > 1
            ? std::min<std::size_t>(config.batchCount,
                                    kMaxVerifyBatchEntries)
            : 1;
    // The blocked backend makes N = 4096 (2^36 multiply-adds)
    // practical; the cap only guards against accidentally feeding a
    // 65536-class sweep point into an O(n^3) host check.
    mc_assert(config.m * config.n * config.k * entries <= (1ull << 37),
              "verifyGemm is a host-side O(n^3) check; problem too "
              "large");
    const GemmPlan plan = planGemm(config, arch::defaultCdna2(), opts);

    switch (config.combo) {
      case GemmCombo::Dgemm:
        return entries > 1
                   ? runTypedBatched<double, double, double>(
                         config, plan, scheme, seed, false, func, entries)
                   : runTyped<double, double, double>(config, plan,
                                                      scheme, seed, false,
                                                      func);
      case GemmCombo::Sgemm:
        return entries > 1
                   ? runTypedBatched<float, float, float>(
                         config, plan, scheme, seed, false, func, entries)
                   : runTyped<float, float, float>(config, plan, scheme,
                                                   seed, false, func);
      case GemmCombo::Hgemm:
        // SIMD f16 FMA chain rounds every step.
        return entries > 1
                   ? runTypedBatched<fp::Half, fp::Half, float>(
                         config, plan, scheme, seed, true, func, entries)
                   : runTyped<fp::Half, fp::Half, float>(
                         config, plan, scheme, seed, true, func);
      case GemmCombo::Hhs:
        return entries > 1
                   ? runTypedBatched<fp::Half, fp::Half, float>(
                         config, plan, scheme, seed, false, func, entries)
                   : runTyped<fp::Half, fp::Half, float>(
                         config, plan, scheme, seed, false, func);
      case GemmCombo::Hss:
        return entries > 1
                   ? runTypedBatched<float, fp::Half, float>(
                         config, plan, scheme, seed, false, func, entries)
                   : runTyped<float, fp::Half, float>(config, plan,
                                                      scheme, seed, false,
                                                      func);
      case GemmCombo::I8gemm:
        return entries > 1 ? runI8Batched(config, plan, scheme, seed,
                                          func, entries)
                           : runI8(config, plan, scheme, seed, func);
    }
    mc_panic("unreachable combo in verifyGemm");
}

} // namespace blas
} // namespace mc
