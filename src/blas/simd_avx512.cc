/**
 * @file
 * AVX-512 tier: 16 f32 / 8 f64 lanes, mask-register blends. Compiled
 * -mavx512f/bw/vl/dq with -ffp-contract=off and no -mfma (see
 * src/blas/CMakeLists.txt), keeping mul and add as separate roundings
 * — the bit-exactness contract of simd_vec_kernels.hh.
 */

#if defined(MC_SIMD_HAVE_X86)

#include <immintrin.h>

#include "blas/simd_vec_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

struct Avx512Ops
{
    using VF = __m512;
    using VD = __m512d;
    using VI = __m512i;
    using Mask = __mmask16;
    static constexpr std::size_t kWidthF = 16;
    static constexpr std::size_t kWidthD = 8;

    static VF loadF(const float *p) { return _mm512_loadu_ps(p); }
    static void storeF(float *p, VF v) { _mm512_storeu_ps(p, v); }
    static VF set1F(float v) { return _mm512_set1_ps(v); }
    static VF addF(VF a, VF b) { return _mm512_add_ps(a, b); }
    static VF subF(VF a, VF b) { return _mm512_sub_ps(a, b); }
    static VF mulF(VF a, VF b) { return _mm512_mul_ps(a, b); }

    static VD loadD(const double *p) { return _mm512_loadu_pd(p); }
    static void storeD(double *p, VD v) { _mm512_storeu_pd(p, v); }
    static VD set1D(double v) { return _mm512_set1_pd(v); }
    static VD addD(VD a, VD b) { return _mm512_add_pd(a, b); }
    static VD subD(VD a, VD b) { return _mm512_sub_pd(a, b); }
    static VD mulD(VD a, VD b) { return _mm512_mul_pd(a, b); }

    static VI set1I(int v) { return _mm512_set1_epi32(v); }
    static VI andI(VI a, VI b) { return _mm512_and_si512(a, b); }
    static VI orI(VI a, VI b) { return _mm512_or_si512(a, b); }
    static VI addI(VI a, VI b) { return _mm512_add_epi32(a, b); }
    static VI subI(VI a, VI b) { return _mm512_sub_epi32(a, b); }
    template <int N> static VI srli(VI v) { return _mm512_srli_epi32(v, N); }
    template <int N> static VI slli(VI v) { return _mm512_slli_epi32(v, N); }
    // Signed compares suffice: every compared value here is < 2^31.
    static Mask cmpgtI(VI a, VI b) { return _mm512_cmpgt_epi32_mask(a, b); }
    static Mask cmpeqI(VI a, VI b) { return _mm512_cmpeq_epi32_mask(a, b); }
    static VI blendI(VI a, VI b, Mask m)
    {
        return _mm512_mask_blend_epi32(m, a, b);
    }
    static VI cvtF2I(VF v) { return _mm512_cvtps_epi32(v); }
    static VF cvtI2F(VI v) { return _mm512_cvtepi32_ps(v); }
    static VI castF2I(VF v) { return _mm512_castps_si512(v); }
    static VF castI2F(VI v) { return _mm512_castsi512_ps(v); }

    static VI
    loadU16(const std::uint16_t *p)
    {
        return _mm512_cvtepu16_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)));
    }
    static void
    storeU16(std::uint16_t *p, VI h)
    {
        // Lane values are <= 0xffff, so the truncating convert is
        // lossless.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm512_cvtepi32_epi16(h));
    }
};

} // namespace

const SimdKernels &
avx512SimdKernels()
{
    static const SimdKernels kernels =
        makeVecKernels<Avx512Ops>(SimdTier::Avx512);
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc

#endif // MC_SIMD_HAVE_X86
