/**
 * @file
 * AVX-512 tier of the int8 dot ladder. Two inner loops share the
 * rung: the portable vpmaddwd form (kGroup = 2, 32 columns per step),
 * and — when the host reports AVX512-VNNI — the vpdpbusd form from
 * simd_int_avx512vnni.cc (kGroup = 4, biased-A contract). Both are
 * exact integer arithmetic, so the runtime choice never changes the
 * output bits; it only changes which instruction does the reduction.
 */

#include <immintrin.h>

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
avx512DotI8(const std::int8_t *arow, const std::int8_t *bpack,
            std::size_t ldp, std::size_t nk, std::int32_t *accs,
            std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; kk += 2) {
        const std::int32_t a0 = arow[kk];
        const std::int32_t a1 = arow[kk + 1];
        const std::uint32_t pair =
            (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a1))
             << 16) |
            static_cast<std::uint16_t>(a0);
        const __m512i va =
            _mm512_set1_epi32(static_cast<std::int32_t>(pair));
        const std::int8_t *bgroup = bpack + kk * ldp;
        std::size_t j = 0;
        for (; j + 32 <= nj; j += 32) {
            const __m256i raw0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(bgroup + j * 2));
            const __m256i raw1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(bgroup + j * 2 + 32));
            const __m512i w0 = _mm512_cvtepi8_epi16(raw0);
            const __m512i w1 = _mm512_cvtepi8_epi16(raw1);
            __m512i acc0 = _mm512_loadu_si512(accs + j);
            __m512i acc1 = _mm512_loadu_si512(accs + j + 16);
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, w0));
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va, w1));
            _mm512_storeu_si512(accs + j, acc0);
            _mm512_storeu_si512(accs + j + 16, acc1);
        }
        for (; j < nj; ++j) {
            accs[j] += a0 * static_cast<std::int32_t>(bgroup[j * 2]) +
                       a1 * static_cast<std::int32_t>(bgroup[j * 2 + 1]);
        }
    }
}

} // namespace

const Int8Kernels &
avx512Int8Kernels()
{
    static const Int8Kernels kernels = [] {
        Int8Kernels k;
        k.tier = SimdTier::Avx512;
        if (cpuFeatures().avx512vnni) {
            k.kGroup = 4;
            k.biasA128 = true;
            k.dotI8 = &vnniDotI8;
        } else {
            k.kGroup = 2;
            k.biasA128 = false;
            k.dotI8 = &avx512DotI8;
        }
        return k;
    }();
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
