/**
 * @file
 * Memoization of GEMM plans.
 *
 * planGemm is pure: the plan depends only on the problem (GemmConfig),
 * the planner tunables (PlannerOptions), and the device calibration.
 * The paper's measurement convention runs every sweep point >= 10
 * times, which re-planned the identical problem on every repetition;
 * the cache makes repetitions plan once. Keys capture *every* input
 * field, so mutating PlannerOptions between runs (the ablation benches
 * do) naturally misses instead of returning a stale plan.
 */

#ifndef MC_BLAS_PLAN_CACHE_HH
#define MC_BLAS_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "blas/tiling.hh"

namespace mc {
namespace blas {

/**
 * Full planner-input key: GemmConfig fields, PlannerOptions fields,
 * and the device calibration fingerprint.
 */
struct PlanKey
{
    // GemmConfig (alpha/beta by bit pattern: they select scaling and
    // conversion work in the plan).
    GemmCombo combo = GemmCombo::Sgemm;
    std::size_t m = 0;
    std::size_t n = 0;
    std::size_t k = 0;
    std::uint64_t alphaBits = 0;
    std::uint64_t betaBits = 0;
    std::size_t batchCount = 1;
    int forceMacroTile = 0;
    int forceMatrixCorePath = -1; ///< -1 unset, 0 forced SIMD, 1 forced MC

    // PlannerOptions.
    int macroTile = 0;
    int wideMacroTile = 0;
    std::size_t wideTileThreshold = 0;
    int simdMacroTile = 0;
    std::uint64_t l2ResidencyBits = 0;
    std::uint64_t bwEffBaseBits = 0;
    std::uint64_t bwEffOccupancyBonusBits = 0;
    std::size_t mixedPrecisionMinDim = 0;

    /** arch::calibrationFingerprint of the target device. */
    std::uint64_t calibration = 0;

    bool operator==(const PlanKey &) const = default;
};

/** Build the cache key for one (config, options, device) triple. */
PlanKey makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
                    std::uint64_t calibration_fingerprint);

/** Stable hash functor over every PlanKey field. */
struct PlanKeyHash
{
    std::size_t operator()(const PlanKey &key) const;
};

/**
 * Thread-safe GemmPlan memo with hit/miss counters.
 *
 * Entries are never evicted: a sweep touches at most a few hundred
 * distinct problems and plans are kilobytes.
 */
class PlanCache
{
  public:
    /**
     * Return the cached plan for @p key, computing it via @p compute
     * on the first request. The reference stays valid for the cache's
     * lifetime (node-based map).
     */
    const GemmPlan &findOrCompute(const PlanKey &key,
                                  const std::function<GemmPlan()> &compute);

    /** Lookups answered from the cache. */
    std::uint64_t hits() const;
    /** Lookups that had to plan (== distinct keys seen). */
    std::uint64_t misses() const;
    /** Distinct plans currently held. */
    std::size_t size() const;

    /** Drop all plans and reset the counters. */
    void clear();

  private:
    mutable std::mutex _mutex;
    std::unordered_map<PlanKey, GemmPlan, PlanKeyHash> _plans;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_PLAN_CACHE_HH
