/**
 * @file
 * Memoization of GEMM plans.
 *
 * planGemm is pure: the plan depends only on the problem (GemmConfig),
 * the planner tunables (PlannerOptions), and the device calibration.
 * The paper's measurement convention runs every sweep point >= 10
 * times, which re-planned the identical problem on every repetition;
 * the cache makes repetitions plan once. Keys capture *every* input
 * field, so mutating PlannerOptions between runs (the ablation benches
 * do) naturally misses instead of returning a stale plan.
 */

#ifndef MC_BLAS_PLAN_CACHE_HH
#define MC_BLAS_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "blas/tiling.hh"

namespace mc {
namespace blas {

/**
 * Full planner-input key: GemmConfig fields, PlannerOptions fields,
 * and the device calibration fingerprint.
 */
struct PlanKey
{
    // GemmConfig (alpha/beta by bit pattern: they select scaling and
    // conversion work in the plan).
    GemmCombo combo = GemmCombo::Sgemm;
    std::size_t m = 0;
    std::size_t n = 0;
    std::size_t k = 0;
    std::uint64_t alphaBits = 0;
    std::uint64_t betaBits = 0;
    std::size_t batchCount = 1;
    int forceMacroTile = 0;
    int forceMatrixCorePath = -1; ///< -1 unset, 0 forced SIMD, 1 forced MC

    // PlannerOptions.
    int macroTile = 0;
    int wideMacroTile = 0;
    std::size_t wideTileThreshold = 0;
    int simdMacroTile = 0;
    std::uint64_t l2ResidencyBits = 0;
    std::uint64_t bwEffBaseBits = 0;
    std::uint64_t bwEffOccupancyBonusBits = 0;
    std::size_t mixedPrecisionMinDim = 0;

    /** arch::calibrationFingerprint of the target device. */
    std::uint64_t calibration = 0;

    /** Packed FunctionalGemmOptions (threads/blocks/scalar/simd): the
     *  resolved functional configuration is part of the plan, so
     *  different knob settings must key different entries. */
    std::uint64_t funcBits = 0;
    /** blas::hostTuneFingerprint of the active tuning artifact (0 when
     *  tuning is inactive): activating or swapping an artifact misses
     *  instead of serving plans resolved against the old entries. */
    std::uint64_t tuneFingerprint = 0;
    /** Packed QuantParams (scales by bit pattern, zero points):
     *  consulted by I8gemm only, but hashed for every combo — the
     *  defaults pack to one constant, so float keys are unaffected. */
    std::uint64_t quantBits = 0;

    bool operator==(const PlanKey &) const = default;
};

/** Build the cache key for one (config, options, device) triple. */
PlanKey makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
                    std::uint64_t calibration_fingerprint);

/** Key covering the functional-backend knobs too (GemmEngine plans
 *  carry their resolved FunctionalGemmOptions; see GemmPlan::func). */
PlanKey makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
                    std::uint64_t calibration_fingerprint,
                    const FunctionalGemmOptions &func,
                    std::uint64_t tune_fingerprint);

/** Stable hash functor over every PlanKey field. */
struct PlanKeyHash
{
    std::size_t operator()(const PlanKey &key) const;
};

/** Process-wide aggregate of every PlanCache's counters (the bench
 *  completion line reports these; see bench::finishBench). */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

/**
 * Thread-safe GemmPlan memo with hit/miss/eviction counters, bounded
 * by an LRU capacity.
 *
 * A single sweep touches at most a few hundred distinct problems, but
 * a long supervised suite run cycles through many sweeps; the cap
 * (default defaultCapacity(), settable per process via --plan-cache-cap)
 * keeps the memo from growing without bound while staying far above
 * any one sweep's working set.
 */
class PlanCache
{
  public:
    /** Starts with the process default capacity (setDefaultCapacity). */
    PlanCache();

    /**
     * Return the cached plan for @p key, computing it via @p compute
     * on the first request. Returned as a shared_ptr: the plan stays
     * valid for as long as the caller holds it, even if the LRU evicts
     * the entry underneath.
     */
    std::shared_ptr<const GemmPlan>
    findOrCompute(const PlanKey &key,
                  const std::function<GemmPlan()> &compute);

    /** Lookups answered from the cache. */
    std::uint64_t hits() const;
    /** Lookups that had to plan. */
    std::uint64_t misses() const;
    /** Entries dropped by the LRU cap. */
    std::uint64_t evictions() const;
    /** Distinct plans currently held. */
    std::size_t size() const;

    /** Current capacity (0 = unbounded). */
    std::size_t capacity() const;
    /** Change the capacity; excess LRU entries are evicted at once. */
    void setCapacity(std::size_t capacity);

    /** Drop all plans and reset the counters (not the capacity). */
    void clear();

    /** Capacity newly constructed caches start with (0 = unbounded).
     *  Process-wide; benches apply --plan-cache-cap here before
     *  constructing engines. */
    static std::size_t defaultCapacity();
    static void setDefaultCapacity(std::size_t capacity);

    /** Aggregate counters across every PlanCache in the process (they
     *  survive the caches themselves; cleared only by process exit). */
    static PlanCacheStats globalStats();

  private:
    void evictExcessLocked();

    /** Most-recently-used entries at the front. */
    using LruList =
        std::list<std::pair<PlanKey, std::shared_ptr<const GemmPlan>>>;

    mutable std::mutex _mutex;
    LruList _lru;
    std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> _index;
    std::size_t _capacity = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_PLAN_CACHE_HH
