/**
 * @file
 * The AVX512-VNNI inner loop of the int8 dot ladder: vpdpbusd, 16
 * columns x 4 k-steps per instruction over kGroup = 4 packed B.
 *
 * vpdpbusd multiplies *unsigned* bytes by signed bytes, so the A
 * operand is biased by +128 into u8 (a ^ 0x80 on the two's-complement
 * bits); the driver subtracts 128 * colsum(B) in its epilogue (the
 * biasA128 contract in simd_int_kernels.hh). All intermediate sums are
 * exact, so the result bits match every other tier after correction.
 *
 * This lives in its own TU compiled -mavx512vnni: folding it into the
 * general AVX-512 tier's TU would let the compiler emit VNNI
 * instructions anywhere in that file, crashing non-VNNI hosts. Only
 * the dispatcher calls this, and only after the CPUID probe.
 */

#include <immintrin.h>

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

void
vnniDotI8(const std::int8_t *arow, const std::int8_t *bpack,
          std::size_t ldp, std::size_t nk, std::int32_t *accs,
          std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; kk += 4) {
        std::uint32_t quad = 0;
        for (int t = 0; t < 4; ++t) {
            const std::uint32_t biased =
                static_cast<std::uint8_t>(arow[kk + t] ^ 0x80);
            quad |= biased << (8 * t);
        }
        const __m512i va =
            _mm512_set1_epi32(static_cast<std::int32_t>(quad));
        const std::int8_t *bgroup = bpack + kk * ldp;
        std::size_t j = 0;
        for (; j + 16 <= nj; j += 16) {
            const __m512i vb = _mm512_loadu_si512(bgroup + j * 4);
            __m512i acc = _mm512_loadu_si512(accs + j);
            acc = _mm512_dpbusd_epi32(acc, va, vb);
            _mm512_storeu_si512(accs + j, acc);
        }
        for (; j < nj; ++j) {
            const std::int8_t *bq = bgroup + j * 4;
            std::int32_t sum = 0;
            for (int t = 0; t < 4; ++t) {
                const std::int32_t biased =
                    static_cast<std::uint8_t>(arow[kk + t] ^ 0x80);
                sum += biased * static_cast<std::int32_t>(bq[t]);
            }
            accs[j] += sum;
        }
    }
}

} // namespace detail
} // namespace blas
} // namespace mc
