/**
 * @file
 * Thread-local scratch arenas for the functional backend's transient
 * buffers (packed operand panels, per-chunk accumulator tiles, TRSM/
 * SYRK column scratch).
 *
 * The paper's measurement convention replays every point many times
 * (repeatMeasure), and the verification and mc_perf hot loops call the
 * functional kernels back to back; a fresh std::vector per call puts a
 * malloc/free pair — and a page-faulting first touch — on every
 * repetition. The arena instead bump-allocates from per-thread blocks
 * that persist at their high-water mark, so steady-state repetitions
 * reuse warm memory with zero allocator traffic.
 *
 * Usage is strictly scoped: construct a ScratchArena::Frame, allocate
 * through it, and let the frame's destructor release everything it
 * handed out. Frames nest LIFO on one thread (an outer GEMM's packing
 * frame stays live while exec::parallelChunks re-enters on the calling
 * thread and opens inner per-chunk frames), and distinct threads use
 * distinct arenas, so no synchronization is needed. Allocations are
 * uninitialized (like std::vector + immediate overwrite patterns they
 * replace, the callers fully write them) unless allocZero is used.
 */

#ifndef MC_BLAS_SCRATCH_ARENA_HH
#define MC_BLAS_SCRATCH_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "common/logging.hh"

namespace mc {
namespace blas {

/** Per-thread bump allocator; see the file comment. */
class ScratchArena
{
  public:
    /** Every allocation is aligned to this (cache-line) boundary. */
    static constexpr std::size_t kAlignment = 64;

    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** The calling thread's arena (created on first use, lives for the
     *  thread; pool workers therefore keep their high-water blocks warm
     *  across tasks). */
    static ScratchArena &threadLocal()
    {
        thread_local ScratchArena arena;
        return arena;
    }

    /** Bytes currently held across all blocks (high-water mark). */
    std::size_t capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block &block : _blocks)
            total += block.size;
        return total;
    }

    /**
     * One LIFO allocation scope. All memory obtained through a frame
     * is invalidated by its destruction; the arena offset rewinds to
     * where the frame found it.
     */
    class Frame
    {
      public:
        Frame() : Frame(ScratchArena::threadLocal()) {}
        explicit Frame(ScratchArena &arena)
            : _arena(arena), _block(arena._current),
              _offset(arena._offset)
        {
        }
        ~Frame()
        {
            _arena._current = _block;
            _arena._offset = _offset;
        }
        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

        /** @p count objects of T, uninitialized. */
        template <typename T>
        T *alloc(std::size_t count)
        {
            return static_cast<T *>(
                _arena.allocate(count * sizeof(T)));
        }

        /** @p count objects of T, zero-filled (T must be trivially
         *  representable by all-zero bytes — the arithmetic scalar and
         *  reduced-float wrapper types used here all are). */
        template <typename T>
        T *allocZero(std::size_t count)
        {
            T *p = alloc<T>(count);
            std::memset(static_cast<void *>(p), 0, count * sizeof(T));
            return p;
        }

      private:
        ScratchArena &_arena;
        std::size_t _block;
        std::size_t _offset;
    };

  private:
    struct Block
    {
        std::unique_ptr<unsigned char, void (*)(unsigned char *)> data{
            nullptr, &freeBlock};
        std::size_t size = 0;
    };

    static void freeBlock(unsigned char *p)
    {
        ::operator delete[](p, std::align_val_t{kAlignment});
    }

    void *allocate(std::size_t bytes)
    {
        const std::size_t need =
            (bytes + kAlignment - 1) / kAlignment * kAlignment;
        // First fit from the current block forward; retained blocks
        // beyond it are the previous high-water mark.
        while (_current < _blocks.size()) {
            Block &block = _blocks[_current];
            if (block.size - _offset >= need) {
                void *p = block.data.get() + _offset;
                _offset += need;
                return p;
            }
            ++_current;
            _offset = 0;
        }
        const std::size_t grow = std::max(
            {need, _blocks.empty() ? kMinBlockBytes
                                   : 2 * _blocks.back().size});
        Block block;
        block.data.reset(static_cast<unsigned char *>(
            ::operator new[](grow, std::align_val_t{kAlignment})));
        block.size = grow;
        _blocks.push_back(std::move(block));
        _current = _blocks.size() - 1;
        _offset = need;
        return _blocks.back().data.get();
    }

    static constexpr std::size_t kMinBlockBytes = 64 * 1024;

    std::vector<Block> _blocks;
    std::size_t _current = 0; ///< block open for bump allocation
    std::size_t _offset = 0;  ///< bytes used in the current block
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_SCRATCH_ARENA_HH
