/**
 * @file
 * The tier-generic SIMD micro-kernel algorithms, templated over a
 * per-ISA `Ops` wrapper (simd_sse2.cc / simd_avx2.cc / simd_avx512.cc
 * / simd_neon.cc define one each and instantiate makeVecKernels). Only
 * those translation units may include this header: they are compiled
 * with the matching -m<isa> flag plus -ffp-contract=off, which is what
 * keeps the algorithms below bit-exact.
 *
 * Why every kernel is bit-identical to the scalar tier:
 *
 *  - The axpy panels vectorize across j (columns). Different j are
 *    different accumulators, so W lanes of "acc += av * b" perform the
 *    same two roundings per element, in the same ascending-k order, as
 *    the scalar loop — PROVIDED mul and add stay separate. The TU's
 *    -ffp-contract=off (and the absence of -mfma) pins that; a fused
 *    mul-add would skip the product rounding and change bits.
 *  - The f32->f16 narrow is integer RNE: rebias the exponent by
 *    subtracting 0x38000000, then add 0xfff plus the kept lsb so the
 *    carry implements round-to-nearest-even exactly (round up iff
 *    round_bit && (sticky || kept&1)), clamp the overflow to infinity,
 *    and handle subnormals by converting |x| * 2^24 to int with the
 *    hardware's RNE convert (the multiply is a pure exponent shift, so
 *    it is exact). NaNs keep the software payload rule
 *    (quiet bit | top 10 fraction bits). tests/fp/simd_convert_test.cc
 *    checks all of this exhaustively against fp::Half.
 *  - The f16->f32 widen rebiases normals, maps exp==31 onto the f32
 *    inf/NaN pattern, and renormalizes subnormals as frac * 2^-24
 *    (again an exact multiply). bf16 is a 16-bit shift both ways, with
 *    the software NaN-quieting rule on the narrow.
 *
 * The subnormal paths use the vector float<->int converts, which
 * follow the default MXCSR/FPCR rounding mode (round to nearest even)
 * and assume denormals are not flushed; this process never changes
 * either setting.
 */

#ifndef MC_BLAS_SIMD_VEC_KERNELS_HH
#define MC_BLAS_SIMD_VEC_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "blas/simd_kernels.hh"
#include "fp/bfloat16.hh"
#include "fp/half.hh"

namespace mc {
namespace blas {
namespace detail {

template <typename Ops>
struct VecKernels
{
    using VF = typename Ops::VF;
    using VD = typename Ops::VD;
    using VI = typename Ops::VI;
    static constexpr std::size_t WF = Ops::kWidthF;
    static constexpr std::size_t WD = Ops::kWidthD;

    // ---- f32 <-> f16 lane conversions (f32 bits in, f16 bits out,
    // both in 32-bit lanes) ----------------------------------------

    static VI
    narrowLanesHalf(VI f)
    {
        const VI abs = Ops::andI(f, Ops::set1I(0x7fffffff));
        const VI sign =
            Ops::andI(Ops::template srli<16>(f), Ops::set1I(0x8000));
        // Normal halves: rebias (f32 bias 127 -> f16 bias 15, mantissa
        // 23 -> 10 bits) and round to nearest even with one add.
        const VI base = Ops::subI(abs, Ops::set1I(0x38000000));
        const VI lsb =
            Ops::andI(Ops::template srli<13>(base), Ops::set1I(1));
        VI norm = Ops::template srli<13>(
            Ops::addI(base, Ops::addI(Ops::set1I(0xfff), lsb)));
        // Values that round past the largest finite half become inf.
        norm = Ops::blendI(norm, Ops::set1I(0x7c00),
                           Ops::cmpgtI(norm, Ops::set1I(0x7c00)));
        // Subnormal halves (|x| below the smallest normal, 2^-14):
        // |x| * 2^24 is exact, and the RNE float->int convert performs
        // the software kept/round/sticky logic in one instruction.
        const VI subn = Ops::cvtF2I(
            Ops::mulF(Ops::castI2F(abs), Ops::set1F(16777216.0f)));
        // Inf and NaN; NaNs keep the quiet bit plus the payload's top
        // 10 bits, exactly like Half::fromFloatBits.
        const VI payload =
            Ops::andI(Ops::template srli<13>(abs), Ops::set1I(0x3ff));
        VI spec = Ops::set1I(0x7c00);
        spec = Ops::blendI(spec,
                           Ops::orI(Ops::set1I(0x7c00 | 0x200), payload),
                           Ops::cmpgtI(abs, Ops::set1I(0x7f800000)));
        VI h = norm;
        h = Ops::blendI(h, subn,
                        Ops::cmpgtI(Ops::set1I(0x38800000), abs));
        h = Ops::blendI(h, spec,
                        Ops::cmpgtI(abs, Ops::set1I(0x7f7fffff)));
        return Ops::orI(h, sign);
    }

    static VI
    widenLanesHalf(VI h)
    {
        const VI sign =
            Ops::template slli<16>(Ops::andI(h, Ops::set1I(0x8000)));
        const VI exp16 =
            Ops::andI(Ops::template srli<10>(h), Ops::set1I(0x1f));
        const VI frac = Ops::andI(h, Ops::set1I(0x3ff));
        // Normal halves: rebias the exponent, shift the fraction up.
        VI bits = Ops::orI(
            Ops::template slli<23>(Ops::addI(exp16, Ops::set1I(112))),
            Ops::template slli<13>(frac));
        // Subnormal halves renormalize as frac * 2^-24 (exact; frac==0
        // yields +0, and the sign OR below restores -0).
        const VI subn = Ops::castF2I(Ops::mulF(
            Ops::cvtI2F(frac), Ops::set1F(5.9604644775390625e-08f)));
        bits = Ops::blendI(bits, subn,
                           Ops::cmpeqI(exp16, Ops::set1I(0)));
        // Inf/NaN: all-ones f32 exponent, fraction shifted up.
        bits = Ops::blendI(bits,
                           Ops::orI(Ops::set1I(0x7f800000),
                                    Ops::template slli<13>(frac)),
                           Ops::cmpeqI(exp16, Ops::set1I(31)));
        return Ops::orI(bits, sign);
    }

    static VI
    narrowLanesBf16(VI f)
    {
        // RNE on the 16 discarded bits, same integer add as the scalar
        // BFloat16::fromFloatBits (wraparound included).
        const VI lsb =
            Ops::andI(Ops::template srli<16>(f), Ops::set1I(1));
        VI b = Ops::template srli<16>(
            Ops::addI(f, Ops::addI(Ops::set1I(0x7fff), lsb)));
        const VI abs = Ops::andI(f, Ops::set1I(0x7fffffff));
        b = Ops::blendI(b,
                        Ops::orI(Ops::template srli<16>(f),
                                 Ops::set1I(0x40)),
                        Ops::cmpgtI(abs, Ops::set1I(0x7f800000)));
        return b;
    }

    // ---- axpy panels ----------------------------------------------

    // The panel loops run j-outer / kk-inner: a group of accumulator
    // vectors is loaded once, consumes the whole k-block from
    // registers, and is stored once. Relative to the textbook kk-outer
    // order this removes the per-step accumulator load/store (3 memory
    // ops per mul+add become 1) without touching the bits: element j's
    // accumulator still receives its k-terms one at a time, ascending.

    template <bool Sub>
    static void
    axpyImplF32(const float *arow, const float *bpanel, std::size_t ldb,
                std::size_t nk, float *accs, std::size_t nj)
    {
        std::size_t j = 0;
        for (; j + 4 * WF <= nj; j += 4 * WF) {
            VF acc0 = Ops::loadF(accs + j);
            VF acc1 = Ops::loadF(accs + j + WF);
            VF acc2 = Ops::loadF(accs + j + 2 * WF);
            VF acc3 = Ops::loadF(accs + j + 3 * WF);
            const float *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                const VF av = Ops::set1F(arow[kk]);
                const VF p0 = Ops::mulF(av, Ops::loadF(brow));
                const VF p1 = Ops::mulF(av, Ops::loadF(brow + WF));
                const VF p2 = Ops::mulF(av, Ops::loadF(brow + 2 * WF));
                const VF p3 = Ops::mulF(av, Ops::loadF(brow + 3 * WF));
                if constexpr (Sub) {
                    acc0 = Ops::subF(acc0, p0);
                    acc1 = Ops::subF(acc1, p1);
                    acc2 = Ops::subF(acc2, p2);
                    acc3 = Ops::subF(acc3, p3);
                } else {
                    acc0 = Ops::addF(acc0, p0);
                    acc1 = Ops::addF(acc1, p1);
                    acc2 = Ops::addF(acc2, p2);
                    acc3 = Ops::addF(acc3, p3);
                }
            }
            Ops::storeF(accs + j, acc0);
            Ops::storeF(accs + j + WF, acc1);
            Ops::storeF(accs + j + 2 * WF, acc2);
            Ops::storeF(accs + j + 3 * WF, acc3);
        }
        for (; j + WF <= nj; j += WF) {
            VF acc = Ops::loadF(accs + j);
            const float *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                const VF p = Ops::mulF(Ops::set1F(arow[kk]),
                                       Ops::loadF(brow));
                acc = Sub ? Ops::subF(acc, p) : Ops::addF(acc, p);
            }
            Ops::storeF(accs + j, acc);
        }
        for (; j < nj; ++j) {
            float acc = accs[j];
            const float *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                if constexpr (Sub)
                    acc -= arow[kk] * *brow;
                else
                    acc += arow[kk] * *brow;
            }
            accs[j] = acc;
        }
    }

    template <bool Sub>
    static void
    axpyImplF64(const double *arow, const double *bpanel, std::size_t ldb,
                std::size_t nk, double *accs, std::size_t nj)
    {
        std::size_t j = 0;
        for (; j + 4 * WD <= nj; j += 4 * WD) {
            VD acc0 = Ops::loadD(accs + j);
            VD acc1 = Ops::loadD(accs + j + WD);
            VD acc2 = Ops::loadD(accs + j + 2 * WD);
            VD acc3 = Ops::loadD(accs + j + 3 * WD);
            const double *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                const VD av = Ops::set1D(arow[kk]);
                const VD p0 = Ops::mulD(av, Ops::loadD(brow));
                const VD p1 = Ops::mulD(av, Ops::loadD(brow + WD));
                const VD p2 = Ops::mulD(av, Ops::loadD(brow + 2 * WD));
                const VD p3 = Ops::mulD(av, Ops::loadD(brow + 3 * WD));
                if constexpr (Sub) {
                    acc0 = Ops::subD(acc0, p0);
                    acc1 = Ops::subD(acc1, p1);
                    acc2 = Ops::subD(acc2, p2);
                    acc3 = Ops::subD(acc3, p3);
                } else {
                    acc0 = Ops::addD(acc0, p0);
                    acc1 = Ops::addD(acc1, p1);
                    acc2 = Ops::addD(acc2, p2);
                    acc3 = Ops::addD(acc3, p3);
                }
            }
            Ops::storeD(accs + j, acc0);
            Ops::storeD(accs + j + WD, acc1);
            Ops::storeD(accs + j + 2 * WD, acc2);
            Ops::storeD(accs + j + 3 * WD, acc3);
        }
        for (; j + WD <= nj; j += WD) {
            VD acc = Ops::loadD(accs + j);
            const double *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                const VD p = Ops::mulD(Ops::set1D(arow[kk]),
                                       Ops::loadD(brow));
                acc = Sub ? Ops::subD(acc, p) : Ops::addD(acc, p);
            }
            Ops::storeD(accs + j, acc);
        }
        for (; j < nj; ++j) {
            double acc = accs[j];
            const double *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                if constexpr (Sub)
                    acc -= arow[kk] * *brow;
                else
                    acc += arow[kk] * *brow;
            }
            accs[j] = acc;
        }
    }

    static void
    axpyF32(const float *arow, const float *bpanel, std::size_t ldb,
            std::size_t nk, float *accs, std::size_t nj)
    {
        axpyImplF32<false>(arow, bpanel, ldb, nk, accs, nj);
    }

    static void
    axpySubF32(const float *arow, const float *bpanel, std::size_t ldb,
               std::size_t nk, float *accs, std::size_t nj)
    {
        axpyImplF32<true>(arow, bpanel, ldb, nk, accs, nj);
    }

    static void
    axpyF64(const double *arow, const double *bpanel, std::size_t ldb,
            std::size_t nk, double *accs, std::size_t nj)
    {
        axpyImplF64<false>(arow, bpanel, ldb, nk, accs, nj);
    }

    static void
    axpySubF64(const double *arow, const double *bpanel, std::size_t ldb,
               std::size_t nk, double *accs, std::size_t nj)
    {
        axpyImplF64<true>(arow, bpanel, ldb, nk, accs, nj);
    }

    /** The round_each_step HGEMM chain: the f16 round-trip stays in
     *  32-bit lanes, so one narrow+widen per mul-add, no packing. */
    static void
    axpyRoundHalfF32(const float *arow, const float *bpanel,
                     std::size_t ldb, std::size_t nk, float *accs,
                     std::size_t nj)
    {
        std::size_t j = 0;
        for (; j + WF <= nj; j += WF) {
            VF acc = Ops::loadF(accs + j);
            const float *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb) {
                acc = Ops::addF(acc, Ops::mulF(Ops::set1F(arow[kk]),
                                               Ops::loadF(brow)));
                acc = Ops::castI2F(
                    widenLanesHalf(narrowLanesHalf(Ops::castF2I(acc))));
            }
            Ops::storeF(accs + j, acc);
        }
        for (; j < nj; ++j) {
            float acc = accs[j];
            const float *brow = bpanel + j;
            for (std::size_t kk = 0; kk < nk; ++kk, brow += ldb)
                acc = fp::Half(acc + arow[kk] * *brow).toFloat();
            accs[j] = acc;
        }
    }

    // ---- batched conversions --------------------------------------

    static void
    widenHalf(const std::uint16_t *in, float *out, std::size_t n)
    {
        std::size_t i = 0;
        for (; i + WF <= n; i += WF)
            Ops::storeF(out + i, Ops::castI2F(widenLanesHalf(
                                     Ops::loadU16(in + i))));
        for (; i < n; ++i)
            out[i] = fp::Half::fromBits(in[i]).toFloat();
    }

    static void
    widenBf16(const std::uint16_t *in, float *out, std::size_t n)
    {
        std::size_t i = 0;
        for (; i + WF <= n; i += WF)
            Ops::storeF(out + i,
                        Ops::castI2F(Ops::template slli<16>(
                            Ops::loadU16(in + i))));
        for (; i < n; ++i)
            out[i] = fp::BFloat16::fromBits(in[i]).toFloat();
    }

    static void
    narrowHalf(const float *in, std::uint16_t *out, std::size_t n)
    {
        std::size_t i = 0;
        for (; i + WF <= n; i += WF)
            Ops::storeU16(out + i, narrowLanesHalf(
                                       Ops::castF2I(Ops::loadF(in + i))));
        for (; i < n; ++i)
            out[i] = fp::Half(in[i]).bits();
    }

    static void
    narrowBf16(const float *in, std::uint16_t *out, std::size_t n)
    {
        std::size_t i = 0;
        for (; i + WF <= n; i += WF)
            Ops::storeU16(out + i, narrowLanesBf16(
                                       Ops::castF2I(Ops::loadF(in + i))));
        for (; i < n; ++i)
            out[i] = fp::BFloat16(in[i]).bits();
    }
};

/** Build the dispatch table of one tier from its Ops wrapper. */
template <typename Ops>
SimdKernels
makeVecKernels(SimdTier tier)
{
    using K = VecKernels<Ops>;
    return SimdKernels{
        .tier = tier,
        .axpyF32 = K::axpyF32,
        .axpySubF32 = K::axpySubF32,
        .axpyRoundHalfF32 = K::axpyRoundHalfF32,
        .axpyF64 = K::axpyF64,
        .axpySubF64 = K::axpySubF64,
        .widenHalfToF32 = K::widenHalf,
        .widenBf16ToF32 = K::widenBf16,
        .narrowF32ToHalf = K::narrowHalf,
        .narrowF32ToBf16 = K::narrowBf16,
    };
}

} // namespace detail
} // namespace blas
} // namespace mc

#endif // MC_BLAS_SIMD_VEC_KERNELS_HH
