#include "gemm_types.hh"

#include "common/logging.hh"

namespace mc {
namespace blas {

const ComboInfo &
comboInfo(GemmCombo combo)
{
    using DT = arch::DataType;
    static const ComboInfo infos[] = {
        {"dgemm", DT::F64, DT::F64, DT::F64},
        {"sgemm", DT::F32, DT::F32, DT::F32},
        {"hgemm", DT::F16, DT::F16, DT::F16},
        {"hhs", DT::F16, DT::F16, DT::F32},
        {"hss", DT::F16, DT::F32, DT::F32},
        {"i8gemm", DT::I8, DT::I8, DT::I32},
    };
    return infos[static_cast<int>(combo)];
}

GemmCombo
parseCombo(const std::string &name)
{
    for (GemmCombo combo : allLibraryCombos) {
        if (name == comboInfo(combo).name)
            return combo;
    }
    mc_fatal("unknown GEMM combo '", name,
             "' (expected dgemm, sgemm, hgemm, hhs, hss, or i8gemm)");
}

} // namespace blas
} // namespace mc
