#include "tiling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mc {
namespace blas {

namespace {

std::size_t
roundUp(std::size_t value, std::size_t multiple)
{
    mc_assert(multiple > 0, "roundUp requires a positive multiple");
    return ((value + multiple - 1) / multiple) * multiple;
}

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    mc_assert(b > 0, "ceilDiv by zero");
    return (a + b - 1) / b;
}

/**
 * The MFMA instruction the Matrix Core path tiles with on @p target.
 *
 * Returns null when the architecture lacks the instruction (HGEMM
 * everywhere — no f16 <- f16 MFMA exists; DGEMM on CDNA1 — no FP64
 * Matrix Cores). @p allow_emulation routes HGEMM through the
 * f32-accumulating mixed-precision instruction with conversions, the
 * what-if the emulation ablation studies.
 */
const arch::MfmaInstruction *
microTileInstruction(GemmCombo combo, arch::GpuArch target,
                     bool allow_emulation)
{
    using DT = arch::DataType;
    switch (combo) {
      case GemmCombo::Dgemm:
        return arch::findInstruction(target, DT::F64, DT::F64,
                                     arch::MfmaShape{16, 16, 4, 1});
      case GemmCombo::Sgemm:
        return arch::findInstruction(target, DT::F32, DT::F32,
                                     arch::MfmaShape{16, 16, 4, 1});
      case GemmCombo::Hhs:
      case GemmCombo::Hss:
        return arch::findInstruction(target, DT::F32, DT::F16,
                                     arch::MfmaShape{16, 16, 16, 1});
      case GemmCombo::Hgemm:
        if (allow_emulation) {
            return arch::findInstruction(target, DT::F32, DT::F16,
                                         arch::MfmaShape{16, 16, 16, 1});
        }
        return nullptr; // no f16 <- f16 MFMA exists (Table I)
      case GemmCombo::I8gemm:
        return arch::findInstruction(target, DT::I32, DT::I8,
                                     arch::MfmaShape{16, 16, 16, 1});
    }
    return nullptr;
}

/**
 * MFMA pipeline efficiency of the library kernel per combo, calibrated
 * to the Fig. 6/7 plateaus relative to the Fig. 3 micro-benchmark
 * plateaus (sgemm ~100 %, dgemm ~90 %, HHS 88 %, HSS lower due to the
 * f32 C/D register and write pressure).
 */
double
mcPathEfficiency(GemmCombo combo)
{
    switch (combo) {
      case GemmCombo::Dgemm: return 0.90;
      case GemmCombo::Sgemm: return 0.99;
      case GemmCombo::Hhs: return 0.886;
      case GemmCombo::Hss: return 0.80;
      case GemmCombo::Hgemm: return 0.85; // emulation-only path
      // INT8 sits at the top throughput tier (1024 MACs/CU/cycle) and
      // its i32 accumulators halve the register pressure of f64.
      case GemmCombo::I8gemm: return 0.95;
    }
    return 1.0;
}

/**
 * Macro-tile selection: prefer the configured tile, widen for huge
 * problems (restores arithmetic intensity at the far end of the
 * sweep), shrink when the grid would not fill the device.
 */
int
selectMacroTile(const GemmConfig &config, const PlannerOptions &opts,
                const arch::Cdna2Calibration &cal, int waves_per_wg)
{
    if (config.forceMacroTile > 0)
        return config.forceMacroTile;

    const std::size_t min_mn = std::min(config.m, config.n);
    if (min_mn >= opts.wideTileThreshold)
        return opts.wideMacroTile;

    const auto slots =
        static_cast<std::uint64_t>(cal.matrixCoresPerGcd());
    int tile = opts.macroTile;
    while (tile > 32) {
        const std::uint64_t wgs = ceilDiv(config.m, tile) *
                                  ceilDiv(config.n, tile) *
                                  config.batchCount;
        if (wgs * waves_per_wg >= 2 * slots)
            break;
        tile /= 2;
    }
    return tile;
}

/**
 * Alpha/beta scaling work on the SIMDs, in the compute type: one
 * multiply for alpha*(AB), and a multiply plus add for + beta*C when
 * beta is nonzero (the paper's 3N^2 SIMD term for alpha=beta=0.1).
 * Identity scale factors are folded away, matching library fast paths.
 */
void
addScalingValu(sim::KernelProfile &profile, const GemmConfig &config,
               arch::DataType compute_type)
{
    const std::uint64_t elems = static_cast<std::uint64_t>(config.m) *
                                config.n * config.batchCount;
    const std::uint64_t insts = ceilDiv(elems, 64);
    if (config.alpha != 1.0)
        profile.addValu(compute_type, sim::ValuOp::Mul, insts, 1);
    if (config.beta != 0.0) {
        if (config.beta != 1.0)
            profile.addValu(compute_type, sim::ValuOp::Mul, insts, 1);
        profile.addValu(compute_type, sim::ValuOp::Add, insts, 1);
    }
}

/**
 * Requantize epilogue of the INT8 path: every output element is
 * scaled by effScale and re-centred on the zero point regardless of
 * alpha/beta (the scale multiply cannot be folded away), plus a
 * mul+add for the beta*C term when it contributes. Counted in the I8
 * VALU bank — the SQ counters have no i32 bank (sim/counters.cc), and
 * the integer epilogue issues from the same pipe as the i8 dot work.
 */
void
addRequantValu(sim::KernelProfile &profile, const GemmConfig &config)
{
    const std::uint64_t elems = static_cast<std::uint64_t>(config.m) *
                                config.n * config.batchCount;
    const std::uint64_t insts = ceilDiv(elems, 64);
    profile.addValu(arch::DataType::I8, sim::ValuOp::Mul, insts, 1);
    profile.addValu(arch::DataType::I8, sim::ValuOp::Add, insts, 1);
    if (config.beta != 0.0) {
        profile.addValu(arch::DataType::I8, sim::ValuOp::Mul, insts, 1);
        profile.addValu(arch::DataType::I8, sim::ValuOp::Add, insts, 1);
    }
}

/**
 * C/D conversion traffic between storage and compute types (HHS keeps
 * C/D in f16 while computing in f32).
 */
void
addConversionValu(sim::KernelProfile &profile, const GemmConfig &config,
                  const ComboInfo &info)
{
    if (info.typeCD == info.computeType)
        return;
    const std::uint64_t elems = static_cast<std::uint64_t>(config.m) *
                                config.n * config.batchCount;
    // Convert D on writeback, and C on read when beta contributes.
    std::uint64_t insts = ceilDiv(elems, 64);
    if (config.beta != 0.0)
        insts *= 2;
    profile.addValu(info.typeCD, sim::ValuOp::Xfer, insts, 0);
}

/**
 * HBM traffic of the tiled GEMM under the A/B panel L2 reuse model.
 */
void
modelMemoryTraffic(GemmPlan &plan, const GemmConfig &config,
                   const ComboInfo &info,
                   const arch::Cdna2Calibration &cal,
                   const PlannerOptions &opts)
{
    const double sAB = static_cast<double>(arch::dataTypeBytes(info.typeAB));
    const double sCD = static_cast<double>(arch::dataTypeBytes(info.typeCD));
    const double mt = plan.macroTile;

    const double tiles_m = std::ceil(static_cast<double>(plan.paddedM) / mt);
    const double tiles_n = std::ceil(static_cast<double>(plan.paddedN) / mt);

    // A K-deep macro strip of A plus one of B must stay L2-resident for
    // successive workgroups to hit in cache.
    const double strip_bytes =
        static_cast<double>(plan.paddedK) * mt * 2.0 * sAB;
    const double l2_eff =
        static_cast<double>(cal.l2BytesPerGcd) * opts.l2Residency;
    const double miss_frac =
        std::clamp((strip_bytes - l2_eff) / l2_eff, 0.0, 1.0);
    plan.l2MissFrac = miss_frac;

    const double bytes_a =
        sAB * static_cast<double>(plan.paddedM) * plan.paddedK *
        (1.0 + miss_frac * (tiles_n - 1.0));
    const double bytes_b =
        sAB * static_cast<double>(plan.paddedK) * plan.paddedN *
        (1.0 + miss_frac * (tiles_m - 1.0));
    const double cd_elems =
        static_cast<double>(config.m) * static_cast<double>(config.n);
    const double bytes_c = (config.beta != 0.0) ? sCD * cd_elems : 0.0;
    const double bytes_d = sCD * cd_elems;

    const auto batch = static_cast<double>(config.batchCount);
    plan.hbmReadBytes = (bytes_a + bytes_b + bytes_c) * batch;
    plan.hbmWriteBytes = bytes_d * batch;

    const auto slots = static_cast<double>(cal.matrixCoresPerGcd());
    plan.bwEfficiency =
        opts.bwEffBase +
        opts.bwEffOccupancyBonus *
            std::min(1.0, static_cast<double>(plan.numWorkgroups) *
                              plan.wavesPerWorkgroup / slots);
}

} // namespace

bool
selectsMatrixCorePath(const GemmConfig &config, const PlannerOptions &opts)
{
    if (config.forceMatrixCorePath)
        return *config.forceMatrixCorePath;
    switch (config.combo) {
      case GemmCombo::Hgemm:
        // No f16 <- f16 MFMA instruction exists; rocBLAS runs HGEMM
        // entirely on the SIMDs (the paper's Fig. 8 finding).
        return false;
      case GemmCombo::Hhs:
      case GemmCombo::Hss:
        // The tiny mixed-precision problem stays on SIMDs: the scaling
        // work cannot move to Matrix Cores, and splitting one 16^3 FMA
        // between the units costs more than it saves.
        return std::min({config.m, config.n, config.k}) >=
               opts.mixedPrecisionMinDim;
      case GemmCombo::Dgemm:
      case GemmCombo::Sgemm:
      case GemmCombo::I8gemm:
        return true;
    }
    return true;
}

GemmPlan
planGemm(const GemmConfig &config, const arch::Cdna2Calibration &cal,
         const PlannerOptions &opts)
{
    mc_assert(config.m > 0 && config.n > 0 && config.k > 0,
              "GEMM dimensions must be positive");
    mc_assert(config.batchCount > 0, "batch count must be positive");

    const ComboInfo &info = comboInfo(config.combo);
    GemmPlan plan;
    plan.useMatrixCores = selectsMatrixCorePath(config, opts);
    plan.profile.label = std::string(info.name) + "_gemm";
    plan.profile.scheduleMode = sim::ScheduleMode::Fluid;

    const arch::MfmaInstruction *inst = microTileInstruction(
        config.combo, cal.arch,
        /*allow_emulation=*/config.forceMatrixCorePath.value_or(false));
    if (plan.useMatrixCores && inst == nullptr) {
        // The target lacks the instruction (HGEMM everywhere; FP64 on
        // first-generation Matrix Cores): fall back to the SIMDs.
        plan.useMatrixCores = false;
    }

    if (plan.useMatrixCores) {
        plan.inst = inst;

        plan.wavesPerWorkgroup = 4;
        plan.macroTile =
            selectMacroTile(config, opts, cal, plan.wavesPerWorkgroup);
        if (plan.macroTile <= 16)
            plan.wavesPerWorkgroup = 1;

        plan.paddedM = roundUp(config.m, inst->shape.m);
        plan.paddedN = roundUp(config.n, inst->shape.n);
        plan.paddedK = roundUp(config.k, inst->shape.k);

        plan.numWorkgroups = ceilDiv(plan.paddedM, plan.macroTile) *
                             ceilDiv(plan.paddedN, plan.macroTile) *
                             config.batchCount;
        plan.numWavefronts = plan.numWorkgroups * plan.wavesPerWorkgroup;

        plan.mfmaInstsTotal = (plan.paddedM / inst->shape.m) *
                              (plan.paddedN / inst->shape.n) *
                              (plan.paddedK / inst->shape.k) *
                              config.batchCount;

        plan.profile.numWavefronts = plan.numWavefronts;
        plan.profile.numWorkgroups = plan.numWorkgroups;
        plan.profile.mcEfficiency = mcPathEfficiency(config.combo);
        plan.profile.addMfma(
            inst, ceilDiv(plan.mfmaInstsTotal, plan.numWavefronts));

        if (config.combo == GemmCombo::I8gemm)
            addRequantValu(plan.profile, config);
        else
            addScalingValu(plan.profile, config, info.computeType);
        addConversionValu(plan.profile, config, info);
        if (config.combo == GemmCombo::Hgemm) {
            // Emulated HGEMM: the MFMA accumulates in f32, so C must
            // be widened on read and D narrowed on writeback even
            // though storage and compute types are both f16.
            const std::uint64_t elems =
                static_cast<std::uint64_t>(config.m) * config.n *
                config.batchCount;
            std::uint64_t insts = ceilDiv(elems, 64);
            if (config.beta != 0.0)
                insts *= 2;
            plan.profile.addValu(arch::DataType::F16, sim::ValuOp::Xfer,
                                 insts, 0);
        }

        // Exact totals for counters and reported FLOPs (the per-
        // wavefront MFMA count above is a ceil distribution).
        sim::HwCounters counters;
        counters.addMfmaOps(
            info.typeAB,
            plan.mfmaInstsTotal *
                static_cast<std::uint64_t>(inst->flopsPerInstruction()),
            plan.mfmaInstsTotal);
        for (const auto &seg : plan.profile.valuTotal)
            counters.addValu(seg.dtype, seg.op, seg.instCount);
        plan.profile.countersOverride = counters;
        plan.profile.mfmaFlopsOverride = config.productFlops();
    } else {
        // ---- SIMD fallback path -----------------------------------------
        plan.inst = nullptr;
        plan.wavesPerWorkgroup = 4;
        plan.macroTile = opts.simdMacroTile;
        plan.paddedM = roundUp(config.m, 16);
        plan.paddedN = roundUp(config.n, 16);
        plan.paddedK = config.k;

        plan.numWorkgroups = ceilDiv(plan.paddedM, plan.macroTile) *
                             ceilDiv(plan.paddedN, plan.macroTile) *
                             config.batchCount;
        plan.numWavefronts = plan.numWorkgroups * plan.wavesPerWorkgroup;

        plan.profile.numWavefronts = plan.numWavefronts;
        plan.profile.numWorkgroups = plan.numWorkgroups;
        plan.profile.simdEfficiency = cal.simdGemmEfficiency;

        const std::uint64_t macs = static_cast<std::uint64_t>(config.m) *
                                   config.n * config.k *
                                   config.batchCount;
        if (config.combo == GemmCombo::I8gemm) {
            // Packed v_dot4-style i8 dot product: four MACs per thread
            // per instruction, accumulated in i32 (counted in the I8
            // bank — the SQ counters have no i32 bank).
            plan.profile.addValu(arch::DataType::I8, sim::ValuOp::Fma,
                                 ceilDiv(macs, 64 * 4), 8);
        } else if (info.computeType == arch::DataType::F16) {
            // Packed v_pk_fma_f16: two MACs per thread per instruction.
            plan.profile.addValu(arch::DataType::F16, sim::ValuOp::Fma,
                                 ceilDiv(macs, 64 * 2), 4);
        } else {
            plan.profile.addValu(info.computeType, sim::ValuOp::Fma,
                                 ceilDiv(macs, 64), 2);
        }
        if (config.combo == GemmCombo::I8gemm)
            addRequantValu(plan.profile, config);
        else
            addScalingValu(plan.profile, config, info.computeType);
        addConversionValu(plan.profile, config, info);

        if (info.computeType == arch::DataType::F16) {
            // The packed v_pk_fma_f16 performs two FMAs per thread per
            // instruction; the SQ counters record it as two FMA
            // instruction-equivalents so that the Eq. 1 FLOP formula
            // (128 FLOPs per counted FMA) stays exact.
            sim::HwCounters counters = plan.profile.expectedCounters();
            plan.profile.countersOverride = counters;
            auto &bank = plan.profile.countersOverride->valu
                [sim::counterTypeIndex(arch::DataType::F16)]
                [static_cast<int>(sim::ValuOp::Fma)];
            bank *= 2;
        }
    }

    modelMemoryTraffic(plan, config, info, cal, opts);
    plan.profile.hbmReadBytes = plan.hbmReadBytes;
    plan.profile.hbmWriteBytes = plan.hbmWriteBytes;
    plan.profile.bwEfficiency = plan.bwEfficiency;
    return plan;
}

} // namespace blas
} // namespace mc
