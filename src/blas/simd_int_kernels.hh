/**
 * @file
 * Integer-SIMD dot-product micro-kernels of the quantized INT8 GEMM
 * path (docs/PERF.md "Integer kernels").
 *
 * Unlike the float axpy ladder, the int8 kernels need no rounding
 * discipline at all: every product of two int8 values and every int32
 * sum is exact, so any accumulation order and any SIMD width produce
 * the same bits. What the tiers share instead is a *data layout*
 * contract — B is pre-packed into k-groups so each tier's widening
 * instruction (pmaddwd pairs, vpdpbusd quads, NEON dot quads) reads
 * its operands contiguously:
 *
 *   packed[(kk / g) * ldp * g + j * g + (kk % g)] = B(kk, j)
 *
 * with g = kGroup and ldp = the packed column count. The driver
 * (int8_gemm.cc) zero-pads k up to a multiple of 4 so every tier's
 * group evenly divides the panel depth, and hands each kernel a panel
 * whose origin and length are multiples of g.
 */

#ifndef MC_BLAS_SIMD_INT_KERNELS_HH
#define MC_BLAS_SIMD_INT_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "blas/simd_dispatch.hh"

namespace mc {
namespace blas {

/**
 * Function-pointer table of one tier's int8 kernels. The scalar tier
 * fills it with the plain reference loop.
 */
struct Int8Kernels
{
    /**
     * accs[j] += sum_{kk < nk} arow[kk] * B(kk, j) for j < nj, with B
     * read from a kGroup-packed panel at @p bpack (layout above,
     * column stride @p ldp). nk is a multiple of kGroup. A kernel with
     * biasA128 set computes sum (arow[kk] + 128) * B(kk, j) instead —
     * the unsigned-A form vpdpbusd needs — and the driver subtracts
     * 128 * colsum(B) afterwards; either way the arithmetic is exact.
     */
    using DotI8 = void (*)(const std::int8_t *arow,
                           const std::int8_t *bpack, std::size_t ldp,
                           std::size_t nk, std::int32_t *accs,
                           std::size_t nj);

    SimdTier tier = SimdTier::Scalar;
    /** B-panel packing group (1, 2 or 4; divides 4). */
    std::size_t kGroup = 1;
    /** Kernel accumulates (a + 128) * b (the VNNI contract). */
    bool biasA128 = false;
    DotI8 dotI8 = nullptr;
};

/** The int8 kernel table of a *resolved* tier (asserts tier != Auto).
 *  Records the tier in the dispatched-tier label like simdKernels. */
const Int8Kernels &int8Kernels(SimdTier resolved);

/** resolveSimdTier + int8Kernels in one call. */
const Int8Kernels &int8KernelsFor(SimdTier requested);

namespace detail {

// Defined by the integer tier translation units cmake compiles in;
// only the dispatcher (simd_dispatch.cc) calls these directly.
const Int8Kernels &scalarInt8Kernels();
#if defined(MC_SIMD_HAVE_X86)
const Int8Kernels &sse2Int8Kernels();
const Int8Kernels &avx2Int8Kernels();
const Int8Kernels &avx512Int8Kernels();
/** The vpdpbusd inner loop (simd_int_avx512vnni.cc, its own TU so
 *  -mavx512vnni code cannot leak into the plain AVX-512 tier);
 *  biased-A contract, kGroup 4. Only called when the host reports
 *  avx512vnni. */
void vnniDotI8(const std::int8_t *arow, const std::int8_t *bpack,
               std::size_t ldp, std::size_t nk, std::int32_t *accs,
               std::size_t nj);
#endif
#if defined(MC_SIMD_HAVE_NEON)
const Int8Kernels &neonInt8Kernels();
#endif

} // namespace detail

} // namespace blas
} // namespace mc

#endif // MC_BLAS_SIMD_INT_KERNELS_HH
