/**
 * @file
 * Additional BLAS level-3 routines: triangular solve with multiple
 * right-hand sides (TRSM) and symmetric rank-k update (SYRK).
 *
 * These are the routines LAPACK-style factorizations delegate to
 * besides GEMM: blocked LU uses TRSM for its U12 panels, blocked
 * Cholesky uses TRSM and SYRK for its trailing updates. rocBLAS maps
 * both onto Matrix Cores through the same tiling machinery as GEMM
 * (TRSM via blocked diagonal inversion plus GEMM updates), so the
 * planner here models them as GEMM-equivalent Matrix Core work with
 * the triangular-shape discount.
 */

#ifndef MC_BLAS_LEVEL3_HH
#define MC_BLAS_LEVEL3_HH

#include <vector>

#include "blas/fast_gemm.hh"
#include "blas/gemm.hh"
#include "common/matrix.hh"

namespace mc {
namespace blas {

/** Which side the triangular matrix multiplies from. */
enum class Side
{
    Left,  ///< solve op(A) * X = alpha * B
    Right, ///< solve X * op(A) = alpha * B
};

/** Which triangle of the matrix is referenced. */
enum class Fill
{
    Lower,
    Upper,
};

/**
 * A triangular solve problem: X such that op(A) X = alpha B (Left) or
 * X op(A) = alpha B (Right), with A triangular m x m (Left) or
 * n x n (Right), and B m x n.
 */
struct TrsmConfig
{
    GemmCombo combo = GemmCombo::Sgemm; ///< datatype selection
    Side side = Side::Left;
    Fill fill = Fill::Lower;
    bool unitDiagonal = false;
    std::size_t m = 0; ///< rows of B
    std::size_t n = 0; ///< columns of B
    double alpha = 1.0;
    int device = 0;

    /** Algorithmic FLOPs: m^2 n (Left) or m n^2 (Right). */
    double flops() const
    {
        const double mm = static_cast<double>(m);
        const double nn = static_cast<double>(n);
        return side == Side::Left ? mm * mm * nn : mm * nn * nn;
    }
};

/**
 * A symmetric rank-k update: C = alpha * A * A^T + beta * C with C
 * n x n (one triangle updated) and A n x k.
 */
struct SyrkConfig
{
    GemmCombo combo = GemmCombo::Sgemm;
    Fill fill = Fill::Lower;
    std::size_t n = 0;
    std::size_t k = 0;
    double alpha = 1.0;
    double beta = 0.0;
    int device = 0;

    /** Algorithmic FLOPs: n^2 k (half of the equivalent GEMM). */
    double flops() const
    {
        return static_cast<double>(n) * n * k;
    }
};

/**
 * A matrix-vector multiply: y = alpha * A * x + beta * y, A m x n.
 * GEMV has O(1) arithmetic intensity — every element of A is touched
 * once per FLOP pair — so it never profits from Matrix Cores and runs
 * bandwidth-bound on the SIMDs, the counterpoint to GEMM on the
 * roofline.
 */
struct GemvConfig
{
    GemmCombo combo = GemmCombo::Sgemm;
    std::size_t m = 0;
    std::size_t n = 0;
    double alpha = 1.0;
    double beta = 0.0;
    int device = 0;

    /** Algorithmic FLOPs: 2 m n. */
    double flops() const { return 2.0 * static_cast<double>(m) * n; }
};

/**
 * Level-2/3 routines executed against the simulated device through a
 * GemmEngine (sharing its planner options and runtime).
 */
class Level3Engine
{
  public:
    explicit Level3Engine(GemmEngine &engine) : _engine(engine) {}

    /**
     * Execute a TRSM on the device (timing path). Matrix Core usage
     * follows the underlying datatype's GEMM path.
     */
    Result<GemmResult> runTrsm(const TrsmConfig &config);

    /** Execute a SYRK on the device (timing path). */
    Result<GemmResult> runSyrk(const SyrkConfig &config);

    /** Execute a GEMV on the device (always the SIMD path). */
    Result<GemmResult> runGemv(const GemvConfig &config);

  private:
    GemmEngine &_engine;
};

// ---- Functional host implementations (all combos' storage types) -------

/**
 * Scalar solve of op(A) X = alpha B in place (B becomes X), Side::Left
 * only, non-transposed A. Ground truth for the fast path below.
 *
 * @tparam T scalar type (float or double).
 */
template <typename T>
void
scalarReferenceTrsmLeft(Fill fill, bool unit_diagonal, double alpha,
                        const Matrix<T> &a, Matrix<T> &b)
{
    mc_assert(a.rows() == a.cols(), "TRSM requires a square A");
    mc_assert(a.rows() == b.rows(), "TRSM dimension mismatch");
    const std::size_t m = b.rows();
    const std::size_t n = b.cols();

    for (std::size_t j = 0; j < n; ++j) {
        if (fill == Fill::Lower) {
            for (std::size_t i = 0; i < m; ++i) {
                T acc = static_cast<T>(alpha) * b(i, j);
                for (std::size_t kk = 0; kk < i; ++kk)
                    acc -= a(i, kk) * b(kk, j);
                b(i, j) = unit_diagonal ? acc : acc / a(i, i);
            }
        } else {
            for (std::size_t ii = m; ii > 0; --ii) {
                const std::size_t i = ii - 1;
                T acc = static_cast<T>(alpha) * b(i, j);
                for (std::size_t kk = i + 1; kk < m; ++kk)
                    acc -= a(i, kk) * b(kk, j);
                b(i, j) = unit_diagonal ? acc : acc / a(i, i);
            }
        }
    }
}

/**
 * Solve op(A) X = alpha B through the fast backend: the scalar
 * forward/back substitution with the j loop innermost (an axpy-with-
 * subtraction over a column panel — the exact per-element term order
 * of scalarReferenceTrsmLeft), column panels fanned across threads.
 * Bit-identical to the scalar kernel; right-hand-side columns are
 * independent, so the split cannot reorder anything.
 */
template <typename T>
void
fastTrsmLeft(Fill fill, bool unit_diagonal, double alpha,
             const Matrix<T> &a, Matrix<T> &b,
             const FunctionalGemmOptions &opts = FunctionalGemmOptions())
{
    mc_assert(a.rows() == a.cols(), "TRSM requires a square A");
    mc_assert(a.rows() == b.rows(), "TRSM dimension mismatch");
    const std::size_t m = b.rows();
    const std::size_t n = b.cols();
    const T alpha_t = static_cast<T>(alpha);
    const T *pa = a.data();
    T *pb = b.data();
    const FunctionalGemmOptions ropts = resolveFunctionalOptions(
        opts, comboForTypes<T, T, T>(false), n);
    const SimdKernels &kernels = simdKernelsFor(ropts.simd);
    const auto axpySub = [&kernels, n](const T *arow, const T *bpanel,
                                       std::size_t nk, T *accs,
                                       std::size_t nj) {
        if constexpr (std::is_same_v<T, float>)
            kernels.axpySubF32(arow, bpanel, n, nk, accs, nj);
        else if constexpr (std::is_same_v<T, double>)
            kernels.axpySubF64(arow, bpanel, n, nk, accs, nj);
        else
            detail::axpyPanelSub<T>(arow, bpanel, n, nk, accs, nj);
    };

    exec::parallelChunks(
        n, static_cast<std::size_t>(ropts.blockN), ropts.threads,
        [&](std::size_t j0, std::size_t j1) {
            const std::size_t nj = j1 - j0;
            ScratchArena::Frame frame;
            T *accs = frame.alloc<T>(nj);
            for (std::size_t step = 0; step < m; ++step) {
                const std::size_t i =
                    fill == Fill::Lower ? step : m - 1 - step;
                T *brow = pb + i * n + j0;
                for (std::size_t j = 0; j < nj; ++j)
                    accs[j] = alpha_t * brow[j];
                if (fill == Fill::Lower)
                    axpySub(pa + i * m, pb + j0, i, accs, nj);
                else
                    axpySub(pa + i * m + i + 1, pb + (i + 1) * n + j0,
                            m - i - 1, accs, nj);
                const T diag = pa[i * m + i];
                for (std::size_t j = 0; j < nj; ++j)
                    brow[j] = unit_diagonal ? accs[j] : accs[j] / diag;
            }
        });
}

/**
 * TRSM entry point, routed through the fast backend (@p opts only
 * tunes speed, or forces the scalar substitution loop).
 */
template <typename T>
void
referenceTrsmLeft(Fill fill, bool unit_diagonal, double alpha,
                  const Matrix<T> &a, Matrix<T> &b,
                  const FunctionalGemmOptions &opts = FunctionalGemmOptions())
{
    if (opts.forceScalar) {
        scalarReferenceTrsmLeft(fill, unit_diagonal, alpha, a, b);
        return;
    }
    fastTrsmLeft(fill, unit_diagonal, alpha, a, b, opts);
}

/**
 * Scalar C = alpha * A * A^T + beta * C on the @p fill triangle of C
 * (the other triangle is left untouched, as BLAS specifies). Ground
 * truth for the fast path below.
 */
template <typename T>
void
scalarReferenceSyrk(Fill fill, double alpha, const Matrix<T> &a,
                    double beta, Matrix<T> &c)
{
    mc_assert(c.rows() == c.cols(), "SYRK requires a square C");
    mc_assert(a.rows() == c.rows(), "SYRK dimension mismatch");
    const std::size_t n = c.rows();
    const std::size_t k = a.cols();

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j_lo = fill == Fill::Lower ? 0 : i;
        const std::size_t j_hi = fill == Fill::Lower ? i + 1 : n;
        for (std::size_t j = j_lo; j < j_hi; ++j) {
            T acc = T(0);
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += a(i, kk) * a(j, kk);
            c(i, j) = static_cast<T>(alpha) * acc +
                      static_cast<T>(beta) * c(i, j);
        }
    }
}

/**
 * SYRK through the fast backend: A^T is packed once so the j loop
 * reads contiguously (accs[j] += a(i,kk) * at[kk][j], kk ascending —
 * scalarReferenceSyrk's exact term order), row blocks fanned across
 * threads. Bit-identical to the scalar kernel.
 */
template <typename T>
void
fastSyrk(Fill fill, double alpha, const Matrix<T> &a, double beta,
         Matrix<T> &c, const FunctionalGemmOptions &opts =
                           FunctionalGemmOptions())
{
    mc_assert(c.rows() == c.cols(), "SYRK requires a square C");
    mc_assert(a.rows() == c.rows(), "SYRK dimension mismatch");
    const std::size_t n = c.rows();
    const std::size_t k = a.cols();
    const FunctionalGemmOptions ropts = resolveFunctionalOptions(
        opts, comboForTypes<T, T, T>(false), n);
    mc_assert(ropts.blockM >= 1 && ropts.blockN >= 1 && ropts.blockK >= 1,
              "block sizes must be positive");
    const std::size_t bm = static_cast<std::size_t>(ropts.blockM);
    const std::size_t bn = static_cast<std::size_t>(ropts.blockN);
    const std::size_t bk = static_cast<std::size_t>(ropts.blockK);
    const T alpha_t = static_cast<T>(alpha);
    const T beta_t = static_cast<T>(beta);
    const T *pa = a.data();
    T *pc = c.data();

    // Packed transpose: at[kk * n + j] = a(j, kk), so the inner update
    // streams rows of "at" exactly like the GEMM kernel streams B. It
    // lives in the thread-local arena: repeatMeasure-style loops reuse
    // the same warm block instead of paying a heap round trip per call.
    ScratchArena::Frame scratch;
    T *at = scratch.alloc<T>(k * n);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t kk = 0; kk < k; ++kk)
            at[kk * n + j] = pa[j * k + kk];

    const SimdKernels &kernels = simdKernelsFor(ropts.simd);
    const auto axpy = [&kernels, n](const T *arow, const T *bpanel,
                                    std::size_t nk, T *accs,
                                    std::size_t nj) {
        if constexpr (std::is_same_v<T, float>)
            kernels.axpyF32(arow, bpanel, n, nk, accs, nj);
        else if constexpr (std::is_same_v<T, double>)
            kernels.axpyF64(arow, bpanel, n, nk, accs, nj);
        else
            detail::axpyPanel<T>(arow, bpanel, n, nk, accs, nj);
    };

    exec::parallelChunks(n, bm, ropts.threads, [&](std::size_t r0,
                                                  std::size_t r1) {
        ScratchArena::Frame frame;
        T *accs = frame.alloc<T>(bn);
        for (std::size_t i = r0; i < r1; ++i) {
            const std::size_t j_lo = fill == Fill::Lower ? 0 : i;
            const std::size_t j_hi = fill == Fill::Lower ? i + 1 : n;
            for (std::size_t j0 = j_lo; j0 < j_hi; j0 += bn) {
                const std::size_t nj = std::min(bn, j_hi - j0);
                std::fill_n(accs, nj, T(0));
                for (std::size_t k0 = 0; k0 < k; k0 += bk) {
                    const std::size_t nk = std::min(bk, k - k0);
                    axpy(pa + i * k + k0, at + k0 * n + j0, nk,
                         accs, nj);
                }
                T *crow = pc + i * n + j0;
                for (std::size_t j = 0; j < nj; ++j)
                    crow[j] = alpha_t * accs[j] + beta_t * crow[j];
            }
        }
    });
}

/**
 * SYRK entry point, routed through the fast backend (@p opts only
 * tunes speed, or forces the scalar loop).
 */
template <typename T>
void
referenceSyrk(Fill fill, double alpha, const Matrix<T> &a, double beta,
              Matrix<T> &c, const FunctionalGemmOptions &opts =
                                FunctionalGemmOptions())
{
    if (opts.forceScalar) {
        scalarReferenceSyrk(fill, alpha, a, beta, c);
        return;
    }
    fastSyrk(fill, alpha, a, beta, c, opts);
}

} // namespace blas
} // namespace mc

#endif // MC_BLAS_LEVEL3_HH
