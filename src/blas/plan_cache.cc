#include "plan_cache.hh"

#include <bit>

#include "common/hash.hh"

namespace mc {
namespace blas {

PlanKey
makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
            std::uint64_t calibration_fingerprint)
{
    PlanKey key;
    key.combo = config.combo;
    key.m = config.m;
    key.n = config.n;
    key.k = config.k;
    key.alphaBits = std::bit_cast<std::uint64_t>(config.alpha);
    key.betaBits = std::bit_cast<std::uint64_t>(config.beta);
    key.batchCount = config.batchCount;
    key.forceMacroTile = config.forceMacroTile;
    key.forceMatrixCorePath =
        config.forceMatrixCorePath
            ? (*config.forceMatrixCorePath ? 1 : 0)
            : -1;

    key.macroTile = opts.macroTile;
    key.wideMacroTile = opts.wideMacroTile;
    key.wideTileThreshold = opts.wideTileThreshold;
    key.simdMacroTile = opts.simdMacroTile;
    key.l2ResidencyBits = std::bit_cast<std::uint64_t>(opts.l2Residency);
    key.bwEffBaseBits = std::bit_cast<std::uint64_t>(opts.bwEffBase);
    key.bwEffOccupancyBonusBits =
        std::bit_cast<std::uint64_t>(opts.bwEffOccupancyBonus);
    key.mixedPrecisionMinDim = opts.mixedPrecisionMinDim;

    key.calibration = calibration_fingerprint;
    return key;
}

std::size_t
PlanKeyHash::operator()(const PlanKey &key) const
{
    std::uint64_t h = kHashBasis;
    h = hashCombine(h, static_cast<std::uint64_t>(key.combo));
    h = hashCombine(h, key.m);
    h = hashCombine(h, key.n);
    h = hashCombine(h, key.k);
    h = hashCombine(h, key.alphaBits);
    h = hashCombine(h, key.betaBits);
    h = hashCombine(h, key.batchCount);
    h = hashCombine(h, static_cast<std::uint64_t>(key.forceMacroTile));
    h = hashCombine(h,
                    static_cast<std::uint64_t>(key.forceMatrixCorePath + 1));
    h = hashCombine(h, static_cast<std::uint64_t>(key.macroTile));
    h = hashCombine(h, static_cast<std::uint64_t>(key.wideMacroTile));
    h = hashCombine(h, key.wideTileThreshold);
    h = hashCombine(h, static_cast<std::uint64_t>(key.simdMacroTile));
    h = hashCombine(h, key.l2ResidencyBits);
    h = hashCombine(h, key.bwEffBaseBits);
    h = hashCombine(h, key.bwEffOccupancyBonusBits);
    h = hashCombine(h, key.mixedPrecisionMinDim);
    h = hashCombine(h, key.calibration);
    return static_cast<std::size_t>(h);
}

const GemmPlan &
PlanCache::findOrCompute(const PlanKey &key,
                         const std::function<GemmPlan()> &compute)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _plans.find(key);
    if (it != _plans.end()) {
        ++_hits;
        return it->second;
    }
    ++_misses;
    return _plans.emplace(key, compute()).first->second;
}

std::uint64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hits;
}

std::uint64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _misses;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _plans.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _plans.clear();
    _hits = 0;
    _misses = 0;
}

} // namespace blas
} // namespace mc
