#include "plan_cache.hh"

#include <atomic>
#include <bit>

#include "common/hash.hh"

namespace {

// Defaults to 1024: far above any single sweep's distinct-problem
// count, small enough that a week-long suite run stays bounded.
std::atomic<std::size_t> g_default_capacity{1024};

// Process-wide aggregates, fed by every cache instance so the bench
// completion line can report them after the engines are gone.
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_evictions{0};

} // namespace

namespace mc {
namespace blas {

PlanKey
makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
            std::uint64_t calibration_fingerprint)
{
    PlanKey key;
    key.combo = config.combo;
    key.m = config.m;
    key.n = config.n;
    key.k = config.k;
    key.alphaBits = std::bit_cast<std::uint64_t>(config.alpha);
    key.betaBits = std::bit_cast<std::uint64_t>(config.beta);
    key.batchCount = config.batchCount;
    key.forceMacroTile = config.forceMacroTile;
    key.forceMatrixCorePath =
        config.forceMatrixCorePath
            ? (*config.forceMatrixCorePath ? 1 : 0)
            : -1;

    key.macroTile = opts.macroTile;
    key.wideMacroTile = opts.wideMacroTile;
    key.wideTileThreshold = opts.wideTileThreshold;
    key.simdMacroTile = opts.simdMacroTile;
    key.l2ResidencyBits = std::bit_cast<std::uint64_t>(opts.l2Residency);
    key.bwEffBaseBits = std::bit_cast<std::uint64_t>(opts.bwEffBase);
    key.bwEffOccupancyBonusBits =
        std::bit_cast<std::uint64_t>(opts.bwEffOccupancyBonus);
    key.mixedPrecisionMinDim = opts.mixedPrecisionMinDim;

    key.calibration = calibration_fingerprint;

    std::uint64_t qbits = kHashBasis;
    qbits = hashCombine(
        qbits, std::bit_cast<std::uint32_t>(config.quant.scaleA));
    qbits = hashCombine(
        qbits, std::bit_cast<std::uint32_t>(config.quant.scaleB));
    qbits = hashCombine(
        qbits, std::bit_cast<std::uint32_t>(config.quant.scaleD));
    qbits = hashCombine(
        qbits, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(config.quant.zeroA)));
    qbits = hashCombine(
        qbits, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(config.quant.zeroB)));
    qbits = hashCombine(
        qbits, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(config.quant.zeroD)));
    key.quantBits = qbits;
    return key;
}

PlanKey
makePlanKey(const GemmConfig &config, const PlannerOptions &opts,
            std::uint64_t calibration_fingerprint,
            const FunctionalGemmOptions &func,
            std::uint64_t tune_fingerprint)
{
    PlanKey key = makePlanKey(config, opts, calibration_fingerprint);
    // Pack the functional knobs; each block field fits 16 bits by
    // construction (blocks are small powers of two), threads in 16.
    std::uint64_t bits = kHashBasis;
    bits = hashCombine(bits, static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(func.threads)));
    bits = hashCombine(bits, static_cast<std::uint64_t>(func.blockM));
    bits = hashCombine(bits, static_cast<std::uint64_t>(func.blockN));
    bits = hashCombine(bits, static_cast<std::uint64_t>(func.blockK));
    bits = hashCombine(bits, func.forceScalar ? 1u : 0u);
    bits = hashCombine(bits, static_cast<std::uint64_t>(func.simd));
    key.funcBits = bits;
    key.tuneFingerprint = tune_fingerprint;
    return key;
}

std::size_t
PlanKeyHash::operator()(const PlanKey &key) const
{
    std::uint64_t h = kHashBasis;
    h = hashCombine(h, static_cast<std::uint64_t>(key.combo));
    h = hashCombine(h, key.m);
    h = hashCombine(h, key.n);
    h = hashCombine(h, key.k);
    h = hashCombine(h, key.alphaBits);
    h = hashCombine(h, key.betaBits);
    h = hashCombine(h, key.batchCount);
    h = hashCombine(h, static_cast<std::uint64_t>(key.forceMacroTile));
    h = hashCombine(h,
                    static_cast<std::uint64_t>(key.forceMatrixCorePath + 1));
    h = hashCombine(h, static_cast<std::uint64_t>(key.macroTile));
    h = hashCombine(h, static_cast<std::uint64_t>(key.wideMacroTile));
    h = hashCombine(h, key.wideTileThreshold);
    h = hashCombine(h, static_cast<std::uint64_t>(key.simdMacroTile));
    h = hashCombine(h, key.l2ResidencyBits);
    h = hashCombine(h, key.bwEffBaseBits);
    h = hashCombine(h, key.bwEffOccupancyBonusBits);
    h = hashCombine(h, key.mixedPrecisionMinDim);
    h = hashCombine(h, key.calibration);
    h = hashCombine(h, key.funcBits);
    h = hashCombine(h, key.tuneFingerprint);
    h = hashCombine(h, key.quantBits);
    return static_cast<std::size_t>(h);
}

PlanCache::PlanCache() : _capacity(defaultCapacity()) {}

std::shared_ptr<const GemmPlan>
PlanCache::findOrCompute(const PlanKey &key,
                         const std::function<GemmPlan()> &compute)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(key);
    if (it != _index.end()) {
        ++_hits;
        g_hits.fetch_add(1, std::memory_order_relaxed);
        // Move to the front (most recently used).
        _lru.splice(_lru.begin(), _lru, it->second);
        return it->second->second;
    }
    ++_misses;
    g_misses.fetch_add(1, std::memory_order_relaxed);
    auto plan = std::make_shared<const GemmPlan>(compute());
    _lru.emplace_front(key, plan);
    _index.emplace(key, _lru.begin());
    evictExcessLocked();
    return plan;
}

void
PlanCache::evictExcessLocked()
{
    if (_capacity == 0)
        return;
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().first);
        _lru.pop_back();
        ++_evictions;
        g_evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hits;
}

std::uint64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _misses;
}

std::uint64_t
PlanCache::evictions() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _evictions;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _lru.size();
}

std::size_t
PlanCache::capacity() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _capacity;
}

void
PlanCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _capacity = capacity;
    evictExcessLocked();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _lru.clear();
    _index.clear();
    _hits = 0;
    _misses = 0;
    _evictions = 0;
}

std::size_t
PlanCache::defaultCapacity()
{
    return g_default_capacity.load(std::memory_order_relaxed);
}

void
PlanCache::setDefaultCapacity(std::size_t capacity)
{
    g_default_capacity.store(capacity, std::memory_order_relaxed);
}

PlanCacheStats
PlanCache::globalStats()
{
    PlanCacheStats stats;
    stats.hits = g_hits.load(std::memory_order_relaxed);
    stats.misses = g_misses.load(std::memory_order_relaxed);
    stats.evictions = g_evictions.load(std::memory_order_relaxed);
    return stats;
}

} // namespace blas
} // namespace mc
