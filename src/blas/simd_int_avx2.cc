/**
 * @file
 * AVX2 tier of the int8 dot ladder: kGroup = 2 packed B, vpmovsxbw
 * sign-extension and vpmaddwd reduction, 16 columns per step. Exact
 * integer arithmetic — identical bits to the scalar loop.
 */

#include <immintrin.h>

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
avx2DotI8(const std::int8_t *arow, const std::int8_t *bpack,
          std::size_t ldp, std::size_t nk, std::int32_t *accs,
          std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; kk += 2) {
        const std::int32_t a0 = arow[kk];
        const std::int32_t a1 = arow[kk + 1];
        const std::uint32_t pair =
            (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a1))
             << 16) |
            static_cast<std::uint16_t>(a0);
        const __m256i va =
            _mm256_set1_epi32(static_cast<std::int32_t>(pair));
        const std::int8_t *bgroup = bpack + kk * ldp;
        std::size_t j = 0;
        for (; j + 16 <= nj; j += 16) {
            const __m128i raw0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bgroup + j * 2));
            const __m128i raw1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bgroup + j * 2 + 16));
            const __m256i w0 = _mm256_cvtepi8_epi16(raw0);
            const __m256i w1 = _mm256_cvtepi8_epi16(raw1);
            __m256i acc0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(accs + j));
            __m256i acc1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(accs + j + 8));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, w0));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, w1));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(accs + j),
                                acc0);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(accs + j + 8), acc1);
        }
        for (; j < nj; ++j) {
            accs[j] += a0 * static_cast<std::int32_t>(bgroup[j * 2]) +
                       a1 * static_cast<std::int32_t>(bgroup[j * 2 + 1]);
        }
    }
}

} // namespace

const Int8Kernels &
avx2Int8Kernels()
{
    static const Int8Kernels kernels = {SimdTier::Avx2, 2, false,
                                        &avx2DotI8};
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
