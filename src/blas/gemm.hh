/**
 * @file
 * The rocBLAS-equivalent GEMM entry point.
 *
 * GemmEngine::run is this model's rocblas_gemm_ex: it resolves the
 * datatype combination, lets the planner choose the Matrix Core or SIMD
 * mapping (with no user-facing opt-out, as the paper notes), allocates
 * the operands on the device, executes the planned kernel on the
 * simulator, and reports timing plus the hardware counters a rocprof
 * run would collect.
 */

#ifndef MC_BLAS_GEMM_HH
#define MC_BLAS_GEMM_HH

#include <memory>

#include "blas/gemm_types.hh"
#include "blas/plan_cache.hh"
#include "blas/tiling.hh"
#include "blas/verify.hh"
#include "common/status.hh"
#include "hip/runtime.hh"

namespace mc {
namespace blas {

/**
 * Executes GEMM problems against a simulated device.
 */
class GemmEngine
{
  public:
    /** Bind the engine to a runtime; the runtime must outlive it. */
    explicit GemmEngine(hip::Runtime &rt,
                        PlannerOptions opts = PlannerOptions());

    /** Planner tunables (for the ablation studies). */
    PlannerOptions &plannerOptions() { return _opts; }
    const PlannerOptions &plannerOptions() const { return _opts; }

    /** Thread/block-size knobs of the fast functional backend used by
     *  verify(); results are identical for every setting. */
    FunctionalGemmOptions &functionalOptions() { return _funcOpts; }
    const FunctionalGemmOptions &functionalOptions() const
    {
        return _funcOpts;
    }

    /** The runtime this engine executes against. */
    hip::Runtime &runtime() { return _rt; }

    /**
     * Plan the mapping of @p config without executing it.
     *
     * Memoized: repeated requests for the same (config, options,
     * calibration) return the cached plan (see planCache()).
     */
    GemmPlan plan(const GemmConfig &config) const;

    /**
     * Execute one GEMM.
     *
     * Fails fast with OutOfMemory when the three operands cannot fit
     * the device's free HBM (checked via operandBytes before any
     * allocation), then allocates A, B, and C/D on the configured
     * device (C doubles as the output, as in the BLAS convention) —
     * so an over-sized problem fails exactly where the paper's sweep
     * stops, without paying allocation churn first.
     */
    Result<GemmResult> run(const GemmConfig &config);

    /**
     * Device bytes the three operands of @p config require.
     */
    static std::size_t operandBytes(const GemmConfig &config);

    /**
     * Numerically verify @p config on the host through the fast
     * functional backend, with this engine's planner options (path
     * selection) and functionalOptions() (threads/blocking).
     */
    VerifyResult verify(const GemmConfig &config,
                        VerifyScheme scheme = VerifyScheme::PaperOnesIdentity,
                        std::uint64_t seed = 0x5eed) const;

    /** The plan memo (hit/miss counters for the sweep harnesses). */
    const PlanCache &planCache() const
    {
        return _sharedCache ? *_sharedCache : _planCache;
    }
    PlanCache &planCache()
    {
        return _sharedCache ? *_sharedCache : _planCache;
    }

    /**
     * Route this engine's plan memoization through @p cache instead of
     * its private cache. The mc_serve daemon hands every per-request
     * engine one shared LRU so plans built for one request are reused
     * by every later request of the same shape (PlanKey already covers
     * calibration and tuning fingerprints, so sharing across runtimes
     * is sound); PlanCache is thread-safe, so concurrent requests may
     * share one cache. Pass nullptr to return to the private cache.
     */
    void usePlanCache(std::shared_ptr<PlanCache> cache)
    {
        _sharedCache = std::move(cache);
    }

  private:
    /** Plan @p config through the cache; the shared_ptr keeps the plan
     *  alive across LRU eviction. */
    std::shared_ptr<const GemmPlan>
    cachedPlan(const GemmConfig &config) const;

    hip::Runtime &_rt;
    PlannerOptions _opts;
    FunctionalGemmOptions _funcOpts;
    std::uint64_t _calFingerprint = 0;
    mutable PlanCache _planCache;
    std::shared_ptr<PlanCache> _sharedCache;
};

} // namespace blas
} // namespace mc

#endif // MC_BLAS_GEMM_HH
