/**
 * @file
 * Persistent block-size / thread autotuning for the fast
 * functional-GEMM backend (docs/PERF.md, "Autotuning").
 *
 * The backend's FunctionalGemmOptions block sizes are pure speed knobs
 * — every setting computes bit-identical results — but the optimum
 * moves with the datatype combo, the SIMD micro-kernel tier, and the
 * problem size (BENCH_pr5.json shows per-tier speedups swinging
 * 1.4–2.5x by shape). This module makes the chase persistent:
 *
 *  - `tuneSearch` is the deterministic search driver `mc_perf --tune`
 *    runs per (combo, tier, size bucket): coordinate descent over the
 *    block/thread candidate lists, pruned by the top-down
 *    classification (src/prof/topdown.hh) of the incumbent — a
 *    backend-bound kernel never tries candidates that grow its cache
 *    working set, a retiring one never tries candidates small enough
 *    to be loop overhead. The measurement callback is injected, so
 *    tests drive the search with a stub cost model.
 *
 *  - `TuningArtifact` is the persisted result: a JSON document
 *    (src/common/json) written atomically (src/common/atomic_file),
 *    guarded by a CRC32 over its payload like the journal-v2 records,
 *    and keyed by a fingerprint of the host CPU-feature set and the
 *    device calibration. A corrupted artifact loads as DataLoss; a
 *    stale-fingerprint artifact is ignored with a stderr note.
 *
 *  - The process-wide *active* artifact feeds resolveFunctionalOptions
 *    (blas/fast_gemm.hh): auto (0) option fields resolve to the tuned
 *    entry for (combo, resolved tier, tuneBucket(n)). Activation comes
 *    from the MC_TUNE environment variable (a path loads that
 *    artifact; `off` disables tuning even against programmatic
 *    activation; unset leaves tuning inactive) or from
 *    setActiveTuningArtifact (mc_perf --tune-apply, tests). PlanCache
 *    keys include the active fingerprint, so GemmEngine plans resolve
 *    the artifact once per problem and cached plans never go stale.
 */

#ifndef MC_BLAS_TUNE_HH
#define MC_BLAS_TUNE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "blas/gemm_types.hh"
#include "common/status.hh"
#include "prof/topdown.hh"

namespace mc {
namespace blas {

// ---- Keys and entries ----------------------------------------------------

/** One tuned configuration: the searched FunctionalGemmOptions
 *  fields. */
struct TunedConfig
{
    int blockM = kDefaultBlockM;
    int blockN = kDefaultBlockN;
    int blockK = kDefaultBlockK;
    int threads = 1;

    bool operator==(const TunedConfig &) const = default;
};

/**
 * Problem-size bucket of @p n: the power of two >= n, clamped to
 * [256, 8192]. Tuned configurations are keyed per bucket so one
 * calibration point covers the sizes that share its cache behaviour.
 */
std::size_t tuneBucket(std::size_t n);

/** Artifact key: the (combo, tier, bucket) a configuration was tuned
 *  for. The tier is always concrete (never Auto). */
struct TuneKey
{
    GemmCombo combo = GemmCombo::Sgemm;
    SimdTier tier = SimdTier::Scalar;
    std::size_t nBucket = 0;

    bool operator==(const TuneKey &) const = default;
};

struct TuneKeyHash
{
    std::size_t operator()(const TuneKey &key) const;
};

/** One persisted artifact entry. */
struct TuneEntry
{
    TunedConfig config;
    /** default-config seconds / tuned seconds, measured at tune time. */
    double speedupVsDefault = 0.0;
    /** Top-down class of the winning configuration ("backend", ...). */
    std::string bound;
    /** The representative N the bucket was tuned at. */
    std::size_t tunedN = 0;
};

// ---- The artifact --------------------------------------------------------

/** Artifact format tag; bump when the JSON layout changes. */
inline constexpr const char *kTuneArtifactMagic = "mc-tune-v1";

/**
 * Fingerprint the tuned configurations are only valid for: the host
 * CPU-feature set (the micro-kernel tiers), the device calibration
 * (arch::defaultCdna2), and the artifact format version. An artifact
 * whose fingerprint does not match the running host is stale and is
 * ignored on activation.
 */
std::uint64_t hostTuneFingerprint();

/** In-memory tuning artifact: entries plus provenance. */
struct TuningArtifact
{
    std::uint64_t fingerprint = 0;
    /** Free-form provenance ("mc_perf --tune", a test name, ...). */
    std::string createdBy;
    std::unordered_map<TuneKey, TuneEntry, TuneKeyHash> entries;

    /** Entry for (combo, tier, bucket of n); nullptr when absent. */
    const TuneEntry *lookup(GemmCombo combo, SimdTier tier,
                            std::size_t n) const;

    /** Serialize to the persisted JSON form (payload + CRC32 guard). */
    std::string serialize() const;
};

/** Atomically persist @p artifact at @p path (temp + fsync + rename). */
Status saveTuningArtifact(const TuningArtifact &artifact,
                          const std::string &path);

/**
 * Load an artifact. Unreadable file => NotFound; malformed JSON, a
 * wrong magic, or a CRC32 mismatch => DataLoss naming the defect. A
 * stale fingerprint is NOT an error here — activation decides that —
 * so tooling can still inspect artifacts from other hosts.
 */
Result<TuningArtifact> loadTuningArtifact(const std::string &path);

// ---- Process-wide activation ---------------------------------------------

/**
 * Activate @p artifact process-wide: subsequent auto-field resolutions
 * consult it. Fails with FailedPrecondition (and activates nothing)
 * when the fingerprint does not match hostTuneFingerprint(), and with
 * Unavailable when MC_TUNE=off pins tuning off. Pass nullopt to
 * deactivate. Not for concurrent use with in-flight GEMMs.
 */
Status setActiveTuningArtifact(std::optional<TuningArtifact> artifact);

/** True when an artifact is active (loaded, fingerprint-valid, and not
 *  vetoed by MC_TUNE=off). */
bool tuningActive();

/** The active artifact's entry for (combo, tier, bucket of n);
 *  nullptr when tuning is inactive or the key is missing. */
const TuneEntry *activeTuneEntry(GemmCombo combo, SimdTier tier,
                                 std::size_t n);

/**
 * The `tuned=` completion-line label: the active artifact's
 * fingerprint as 16 hex digits, or "none". Benches report it next to
 * `simd=` so sweep artifacts are attributable to the block
 * configuration that produced them.
 */
std::string activeTuningLabel();

/**
 * Re-read MC_TUNE and rebuild the activation state (first use does
 * this implicitly). MC_TUNE=<path> loads and activates that artifact —
 * a corrupted or stale file warns once on stderr and leaves tuning
 * inactive rather than failing the run; MC_TUNE=off (or empty/unset)
 * leaves tuning inactive. Exposed for tests and tools that mutate the
 * environment.
 */
void reloadTuningFromEnv();

/**
 * Resolve every auto field of @p opts for a GEMM of combo @p combo and
 * edge @p n: explicit (> 0) block fields and non-zero thread counts
 * pass through untouched; auto (0) fields take the active artifact's
 * entry for (combo, resolved SIMD tier, tuneBucket(n)) when one is
 * loaded, the kDefaultBlock* constants otherwise. Also declared by
 * blas/fast_gemm.hh, whose entry points call it per dispatch.
 */
FunctionalGemmOptions
resolveFunctionalOptions(const FunctionalGemmOptions &opts, GemmCombo combo,
                         std::size_t n);

// ---- The search ----------------------------------------------------------

/** One candidate measurement: wall seconds plus its top-down class. */
struct TuneMeasurement
{
    double seconds = 0.0;
    prof::TopdownClass bound = prof::TopdownClass::Unknown;
};

/** Candidate lists of the coordinate-descent search. Every list is
 *  tried in order; the incumbent's value is skipped. */
struct TuneSearchSpace
{
    std::vector<int> blockM = {16, 32, 64, 128, 256};
    std::vector<int> blockN = {64, 128, 256, 512};
    std::vector<int> blockK = {128, 256, 512, 1024};
    std::vector<int> threads = {1};
    /** Accumulator element size, for the working-set pruning model. */
    std::size_t accBytes = sizeof(float);
    /** Wall-clock measurement budget; candidates beyond it are skipped
     *  (the incumbent from the measurements taken so far wins). */
    double budgetSec = 30.0;
    /** Relative improvement a candidate must show to displace the
     *  incumbent (guards against timer noise flapping the result). */
    double minGain = 0.02;
};

/** Search outcome plus its audit trail. */
struct TuneSearchResult
{
    TunedConfig best;
    double bestSeconds = 0.0;
    double defaultSeconds = 0.0;
    /** defaultSeconds / bestSeconds (>= 1 unless the budget cut the
     *  default remeasurement short). */
    double speedup = 1.0;
    int measured = 0;
    int pruned = 0;
    bool budgetExhausted = false;
    prof::TopdownClass defaultBound = prof::TopdownClass::Unknown;
    prof::TopdownClass bestBound = prof::TopdownClass::Unknown;
};

/**
 * Deterministic coordinate descent: measure the default configuration,
 * then walk the dimensions in the fixed order blockK, blockN, blockM,
 * threads, adopting any candidate that beats the incumbent by
 * minGain. The incumbent's top-down class prunes candidates before
 * they are measured:
 *
 *  - backend-bound: candidates whose cache working set
 *    ((blockM + blockK) * blockN * accBytes) exceeds the incumbent's
 *    are pruned — a kernel starved by the memory hierarchy will not
 *    be saved by a larger footprint;
 *  - retiring: candidates with less than half the incumbent's working
 *    set are pruned — the pipeline is already fed, smaller blocks only
 *    add loop overhead.
 *
 * Given the same measurement function the search is fully
 * deterministic (the budget is accounted from the *measured* seconds,
 * not a live clock).
 */
TuneSearchResult
tuneSearch(const std::function<TuneMeasurement(const TunedConfig &)> &measure,
           const TuneSearchSpace &space);

} // namespace blas
} // namespace mc

#endif // MC_BLAS_TUNE_HH
