/**
 * @file
 * Runtime CPU-feature dispatch for the fast functional-GEMM backend's
 * SIMD micro-kernels (docs/PERF.md, "The dispatch ladder").
 *
 * Tiers form a ladder: scalar < sse2 < avx2 < avx512 on x86-64, and
 * scalar < neon on aarch64. Every tier computes bit-identical results
 * (the kernels vectorize across the j lanes of the axpy panels, one
 * ascending-k accumulator per output element, mul and add pinned as
 * separate roundings), so the choice trades speed only. The process
 * default comes from the MC_SIMD environment variable intersected with
 * the feature probe; an explicitly requested tier the machine cannot
 * run clamps down to the best available tier at or below its rung, so
 * forced-tier CI entries stay portable.
 */

#ifndef MC_BLAS_SIMD_DISPATCH_HH
#define MC_BLAS_SIMD_DISPATCH_HH

#include <string>
#include <string_view>
#include <vector>

namespace mc {
namespace blas {

/** One rung of the micro-kernel ladder (Auto = resolve at call time). */
enum class SimdTier
{
    Auto,
    Scalar,
    Sse2,
    Avx2,
    Avx512,
    Neon,
};

/** The runtime feature probe (cached after the first call). */
struct CpuFeatures
{
    bool sse2 = false;
    bool avx2 = false;
    /** AVX-512 F+BW+VL+DQ (the Skylake-server baseline). */
    bool avx512 = false;
    /** AVX512-VNNI (vpdpbusd); refines the Avx512 tier's int8 dot
     *  kernel, not a ladder rung of its own. */
    bool avx512vnni = false;
    bool neon = false;
};

/** Detected host features, accounting for OS state-saving support. */
const CpuFeatures &cpuFeatures();

/** Lower-case tier name ("auto", "scalar", "sse2", ...). */
const char *simdTierName(SimdTier tier);

/** Parse a tier name; returns false (and leaves @p out alone) on an
 *  unknown spelling. */
bool parseSimdTier(std::string_view text, SimdTier *out);

/** True when the host can run @p tier's kernels (Scalar always can). */
bool simdTierAvailable(SimdTier tier);

/** Every available tier, lowest rung first (always starts Scalar). */
std::vector<SimdTier> availableSimdTiers();

/** The highest available rung. */
SimdTier bestSimdTier();

/**
 * The MC_SIMD environment tier, read and cached on first use (Auto
 * when unset or empty; fatal on an unknown value — a typo in a gating
 * CI variable must not silently fall back).
 */
SimdTier envSimdTier();

/**
 * The tier that will actually run for @p requested: Auto consults
 * MC_SIMD and then the feature probe; an unavailable explicit request
 * clamps down the ladder (one stderr note per distinct clamped
 * request). Never returns Auto.
 */
SimdTier resolveSimdTier(SimdTier requested);

/**
 * Label of every tier this process has actually dispatched to (fetched
 * a kernel table for), '+'-joined in ladder order — e.g. "avx2", or
 * "scalar+avx2" after a run that forced both. Before any dispatch it
 * falls back to what Auto would resolve to, so a completion line
 * printed by a bench that never ran a GEMM still names the process
 * default. Benches put this on their stderr completion line so sweep
 * artifacts are attributable to the kernel tier that produced them.
 */
std::string usedSimdTierLabel();

} // namespace blas
} // namespace mc

#endif // MC_BLAS_SIMD_DISPATCH_HH
