/**
 * @file
 * Functional GEMM verification, in the paper's style.
 *
 * Section IV-A: "values in A and C are set to 1, while B is set to the
 * identity matrix. The result in D should be a n x n matrix filled
 * with 2, which makes the correctness of results easily verifiable."
 * verifyGemm() runs that scheme (and a randomized variant) through the
 * engine-selected execution path — the tiled Matrix Core dataflow or
 * the per-step-rounded SIMD path — and checks the numeric result
 * against the scalar reference.
 */

#ifndef MC_BLAS_VERIFY_HH
#define MC_BLAS_VERIFY_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "blas/fast_gemm.hh"
#include "blas/gemm_types.hh"
#include "blas/tiling.hh"
#include "common/status.hh"

namespace mc {
namespace blas {

/** Which operand-filling scheme a verification run uses. */
enum class VerifyScheme
{
    /** A = 1, B = I, C = 1: D must be alpha + beta everywhere. */
    PaperOnesIdentity,
    /** Uniform random operands, checked against the scalar reference. */
    Random,
};

/** Outcome of a verification run. */
struct VerifyResult
{
    bool passed = false;
    bool usedMatrixCores = false;
    /** Largest |computed - reference| over D (in the C/D type's
     *  widened representation). */
    double maxAbsError = 0.0;
    /** Error threshold the run was judged against. */
    double tolerance = 0.0;
    /** Largest ULP distance over D, in the C/D storage type
     *  (fp::ulpDistance; fp::kUlpNan when a NaN appeared). */
    std::uint64_t maxUlp = 0;
    /** The (i, j) index where maxAbsError occurred — the actionable
     *  pointer when a tolerance failure at large N needs debugging. */
    std::size_t errorRow = 0;
    std::size_t errorCol = 0;
    /** Distinct batch entries the run checked (1 for plain GEMMs;
     *  min(batchCount, kMaxVerifyBatchEntries) for batched configs,
     *  executed through the strided-batched drivers). */
    std::size_t batchEntries = 1;
    std::string detail;
};

/** Batched configs verify this many distinct entries through the
 *  strided-batched drivers — enough to exercise shared-B staging and
 *  per-entry A/C strides while keeping the host O(m*n*k*entries) check
 *  affordable at sweep sizes (batch counts reach 1024). */
inline constexpr std::size_t kMaxVerifyBatchEntries = 4;

/**
 * Execute @p config functionally on the host with the same path
 * selection the engine uses (Matrix Core tiling vs per-step-rounded
 * SIMD arithmetic) and verify the numeric result.
 *
 * Problem sizes are limited by host O(n^3) work; the fast functional
 * backend makes n <= ~4096 practical (see docs/PERF.md).
 *
 * @param seed randomization seed for VerifyScheme::Random.
 * @param func thread/block knobs of the functional backend (results
 *        are identical for every setting).
 */
VerifyResult verifyGemm(const GemmConfig &config,
                        VerifyScheme scheme = VerifyScheme::PaperOnesIdentity,
                        std::uint64_t seed = 0x5eed,
                        const PlannerOptions &opts = PlannerOptions(),
                        const FunctionalGemmOptions &func =
                            FunctionalGemmOptions());

} // namespace blas
} // namespace mc

#endif // MC_BLAS_VERIFY_HH
