#include "tune.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "arch/calibration.hh"
#include "common/atomic_file.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace mc {
namespace blas {

namespace {

/** Parse a combo name without the fatal path of parseCombo. */
bool
comboFromName(const std::string &name, GemmCombo *out)
{
    for (GemmCombo combo : allLibraryCombos) {
        if (name == comboInfo(combo).name) {
            *out = combo;
            return true;
        }
    }
    return false;
}

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
    return buf;
}

bool
parseFingerprintHex(const std::string &text, std::uint64_t *out)
{
    if (text.size() != 16)
        return false;
    char *end = nullptr;
    errno = 0;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 16);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

/**
 * The CRC32 covers this canonical rendering of the payload — entries
 * sorted by key and fields printed with fixed formats — rather than
 * the JSON text itself, so the guard survives pretty-printing while
 * still catching any flipped digit in the data.
 */
std::string
canonicalPayload(const TuningArtifact &artifact)
{
    std::vector<const std::pair<const TuneKey, TuneEntry> *> rows;
    rows.reserve(artifact.entries.size());
    for (const auto &kv : artifact.entries)
        rows.push_back(&kv);
    std::sort(rows.begin(), rows.end(), [](const auto *a, const auto *b) {
        const TuneKey &ka = a->first;
        const TuneKey &kb = b->first;
        if (ka.combo != kb.combo)
            return static_cast<int>(ka.combo) < static_cast<int>(kb.combo);
        if (ka.tier != kb.tier)
            return static_cast<int>(ka.tier) < static_cast<int>(kb.tier);
        return ka.nBucket < kb.nBucket;
    });
    std::ostringstream out;
    out << kTuneArtifactMagic << ';' << fingerprintHex(artifact.fingerprint)
        << ';' << artifact.createdBy << '\n';
    for (const auto *row : rows) {
        const TuneKey &key = row->first;
        const TuneEntry &entry = row->second;
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.17g",
                      entry.speedupVsDefault);
        out << comboInfo(key.combo).name << ',' << simdTierName(key.tier)
            << ',' << key.nBucket << ':' << entry.config.blockM << ','
            << entry.config.blockN << ',' << entry.config.blockK << ','
            << entry.config.threads << ',' << speedup << ',' << entry.bound
            << ',' << entry.tunedN << '\n';
    }
    return out.str();
}

// ---- Process-wide activation state ---------------------------------------

struct ActiveTuning
{
    /** MC_TUNE=off pins tuning off even against programmatic
     *  activation. */
    bool envOff = false;
    /** Fingerprint-valid active artifact; null = inactive. */
    std::shared_ptr<const TuningArtifact> artifact;
};

std::mutex g_tune_mutex;
ActiveTuning g_tuning;
bool g_env_loaded = false;

/** Rebuild the activation state from MC_TUNE; caller holds the lock. */
void
loadEnvLocked()
{
    g_env_loaded = true;
    g_tuning.envOff = false;
    g_tuning.artifact.reset();
    const char *value = std::getenv("MC_TUNE");
    if (value == nullptr || value[0] == '\0')
        return;
    const std::string text(value);
    if (text == "off") {
        g_tuning.envOff = true;
        return;
    }
    Result<TuningArtifact> loaded = loadTuningArtifact(text);
    if (!loaded.isOk()) {
        logging::warn("MC_TUNE artifact '", text,
             "' ignored: ", loaded.status().message());
        return;
    }
    if (loaded.value().fingerprint != hostTuneFingerprint()) {
        logging::warn("MC_TUNE artifact '", text,
             "' ignored: fingerprint ",
             fingerprintHex(loaded.value().fingerprint),
             " was tuned on a different host/calibration (this host: ",
             fingerprintHex(hostTuneFingerprint()), ")");
        return;
    }
    g_tuning.artifact =
        std::make_shared<const TuningArtifact>(loaded.take());
}

/** Env-initialized activation snapshot. */
ActiveTuning
snapshotTuning()
{
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    if (!g_env_loaded)
        loadEnvLocked();
    return g_tuning;
}

} // namespace

// ---- Keys and entries ----------------------------------------------------

std::size_t
tuneBucket(std::size_t n)
{
    std::size_t bucket = 256;
    while (bucket < n && bucket < 8192)
        bucket <<= 1;
    return bucket;
}

std::size_t
TuneKeyHash::operator()(const TuneKey &key) const
{
    std::uint64_t h = kHashBasis;
    h = hashCombine(h, static_cast<std::uint64_t>(key.combo));
    h = hashCombine(h, static_cast<std::uint64_t>(key.tier));
    h = hashCombine(h, key.nBucket);
    return static_cast<std::size_t>(h);
}

// ---- The artifact --------------------------------------------------------

std::uint64_t
hostTuneFingerprint()
{
    static const std::uint64_t fingerprint = [] {
        std::uint64_t h = hashString(kTuneArtifactMagic);
        const CpuFeatures &f = cpuFeatures();
        const std::uint64_t feature_bits =
            (f.sse2 ? 1u : 0u) | (f.avx2 ? 2u : 0u) |
            (f.avx512 ? 4u : 0u) | (f.neon ? 8u : 0u) |
            (f.avx512vnni ? 16u : 0u);
        h = hashCombine(h, feature_bits);
        h = hashCombine(h,
                        arch::calibrationFingerprint(arch::defaultCdna2()));
        return h;
    }();
    return fingerprint;
}

const TuneEntry *
TuningArtifact::lookup(GemmCombo combo, SimdTier tier, std::size_t n) const
{
    const auto it = entries.find(TuneKey{combo, tier, tuneBucket(n)});
    return it == entries.end() ? nullptr : &it->second;
}

std::string
TuningArtifact::serialize() const
{
    JsonValue doc = JsonValue::object();
    doc.set("magic", kTuneArtifactMagic);
    doc.set("fingerprint", fingerprintHex(fingerprint));
    doc.set("created_by", createdBy);
    JsonValue rows = JsonValue::array();
    // Reuse the canonical ordering so the file itself is diffable.
    std::vector<const std::pair<const TuneKey, TuneEntry> *> sorted;
    sorted.reserve(entries.size());
    for (const auto &kv : entries)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  const TuneKey &ka = a->first;
                  const TuneKey &kb = b->first;
                  if (ka.combo != kb.combo)
                      return static_cast<int>(ka.combo) <
                             static_cast<int>(kb.combo);
                  if (ka.tier != kb.tier)
                      return static_cast<int>(ka.tier) <
                             static_cast<int>(kb.tier);
                  return ka.nBucket < kb.nBucket;
              });
    for (const auto *kv : sorted) {
        const TuneKey &key = kv->first;
        const TuneEntry &entry = kv->second;
        JsonValue row = JsonValue::object();
        row.set("combo", comboInfo(key.combo).name);
        row.set("simd", simdTierName(key.tier));
        row.set("n_bucket", static_cast<std::int64_t>(key.nBucket));
        row.set("block_m", entry.config.blockM);
        row.set("block_n", entry.config.blockN);
        row.set("block_k", entry.config.blockK);
        row.set("threads", entry.config.threads);
        row.set("speedup_vs_default", entry.speedupVsDefault);
        row.set("bound", entry.bound);
        row.set("tuned_n", static_cast<std::int64_t>(entry.tunedN));
        rows.append(std::move(row));
    }
    doc.set("entries", std::move(rows));
    doc.set("crc32", static_cast<std::int64_t>(
                         crc32String(canonicalPayload(*this))));
    return doc.serialize() + "\n";
}

Status
saveTuningArtifact(const TuningArtifact &artifact, const std::string &path)
{
    return writeFileAtomic(path, artifact.serialize());
}

Result<TuningArtifact>
loadTuningArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::notFound("tuning artifact unreadable: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<JsonValue> parsed = JsonValue::parse(buffer.str());
    if (!parsed.isOk())
        return Status::dataLoss("tuning artifact " + path +
                                " is not valid JSON: " +
                                parsed.status().message());
    const JsonValue &doc = parsed.value();
    if (!doc.isObject())
        return Status::dataLoss("tuning artifact " + path +
                                ": top level is not an object");
    const JsonValue *magic = doc.find("magic");
    if (magic == nullptr || magic->type() != JsonValue::Type::String ||
        magic->asString() != kTuneArtifactMagic)
        return Status::dataLoss("tuning artifact " + path +
                                ": missing or wrong magic (want '" +
                                std::string(kTuneArtifactMagic) + "')");
    TuningArtifact artifact;
    const JsonValue *fp = doc.find("fingerprint");
    if (fp == nullptr || fp->type() != JsonValue::Type::String ||
        !parseFingerprintHex(fp->asString(), &artifact.fingerprint))
        return Status::dataLoss("tuning artifact " + path +
                                ": malformed fingerprint");
    if (const JsonValue *by = doc.find("created_by");
        by != nullptr && by->type() == JsonValue::Type::String)
        artifact.createdBy = by->asString();
    const JsonValue *rows = doc.find("entries");
    if (rows == nullptr || !rows->isArray())
        return Status::dataLoss("tuning artifact " + path +
                                ": missing entries array");
    for (std::size_t i = 0; i < rows->size(); ++i) {
        const JsonValue &row = rows->at(i);
        if (!row.isObject())
            return Status::dataLoss("tuning artifact " + path + ": entry " +
                                    std::to_string(i) + " is not an object");
        const auto intField = [&](const char *name,
                                  std::int64_t *out) -> bool {
            const JsonValue *v = row.find(name);
            if (v == nullptr || v->type() != JsonValue::Type::Number)
                return false;
            *out = v->asInt();
            return true;
        };
        const auto strField = [&](const char *name,
                                  std::string *out) -> bool {
            const JsonValue *v = row.find(name);
            if (v == nullptr || v->type() != JsonValue::Type::String)
                return false;
            *out = v->asString();
            return true;
        };
        TuneKey key;
        TuneEntry entry;
        std::string combo_name, tier_name;
        std::int64_t n_bucket = 0, bm = 0, bn = 0, bk = 0, threads = 0,
                     tuned_n = 0;
        const JsonValue *speedup = row.find("speedup_vs_default");
        if (!strField("combo", &combo_name) ||
            !strField("simd", &tier_name) ||
            !intField("n_bucket", &n_bucket) || !intField("block_m", &bm) ||
            !intField("block_n", &bn) || !intField("block_k", &bk) ||
            !intField("threads", &threads) ||
            !intField("tuned_n", &tuned_n) ||
            !strField("bound", &entry.bound) || speedup == nullptr ||
            speedup->type() != JsonValue::Type::Number)
            return Status::dataLoss("tuning artifact " + path + ": entry " +
                                    std::to_string(i) +
                                    " is missing fields");
        if (!comboFromName(combo_name, &key.combo))
            return Status::dataLoss("tuning artifact " + path +
                                    ": unknown combo '" + combo_name + "'");
        if (!parseSimdTier(tier_name, &key.tier))
            return Status::dataLoss("tuning artifact " + path +
                                    ": unknown SIMD tier '" + tier_name +
                                    "'");
        if (n_bucket <= 0 || bm <= 0 || bn <= 0 || bk <= 0 || threads < 1 ||
            tuned_n < 0)
            return Status::dataLoss("tuning artifact " + path + ": entry " +
                                    std::to_string(i) +
                                    " has out-of-range fields");
        key.nBucket = static_cast<std::size_t>(n_bucket);
        entry.config.blockM = static_cast<int>(bm);
        entry.config.blockN = static_cast<int>(bn);
        entry.config.blockK = static_cast<int>(bk);
        entry.config.threads = static_cast<int>(threads);
        entry.speedupVsDefault = speedup->asNumber();
        entry.tunedN = static_cast<std::size_t>(tuned_n);
        artifact.entries.emplace(key, std::move(entry));
    }
    const JsonValue *crc = doc.find("crc32");
    if (crc == nullptr || crc->type() != JsonValue::Type::Number)
        return Status::dataLoss("tuning artifact " + path +
                                ": missing crc32 guard");
    const std::uint32_t want =
        static_cast<std::uint32_t>(crc->asInt());
    const std::uint32_t got = crc32String(canonicalPayload(artifact));
    if (want != got)
        return Status::dataLoss(
            "tuning artifact " + path + ": crc32 mismatch (stored " +
            std::to_string(want) + ", payload " + std::to_string(got) +
            ")");
    return artifact;
}

// ---- Process-wide activation ---------------------------------------------

Status
setActiveTuningArtifact(std::optional<TuningArtifact> artifact)
{
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    if (!g_env_loaded)
        loadEnvLocked();
    if (!artifact.has_value()) {
        g_tuning.artifact.reset();
        return Status::ok();
    }
    if (g_tuning.envOff)
        return Status::unavailable(
            "MC_TUNE=off pins tuning off; not activating the artifact");
    if (artifact->fingerprint != hostTuneFingerprint())
        return Status::failedPrecondition(
            "tuning artifact fingerprint " +
            fingerprintHex(artifact->fingerprint) +
            " does not match this host (" +
            fingerprintHex(hostTuneFingerprint()) + ")");
    g_tuning.artifact =
        std::make_shared<const TuningArtifact>(std::move(*artifact));
    return Status::ok();
}

bool
tuningActive()
{
    return snapshotTuning().artifact != nullptr;
}

const TuneEntry *
activeTuneEntry(GemmCombo combo, SimdTier tier, std::size_t n)
{
    // The shared_ptr keeps replaced artifacts alive only while a caller
    // still holds a snapshot; entry pointers stay valid because active
    // artifacts are immutable once published.
    static thread_local std::shared_ptr<const TuningArtifact> pinned;
    ActiveTuning state = snapshotTuning();
    if (state.artifact == nullptr)
        return nullptr;
    pinned = state.artifact;
    return pinned->lookup(combo, tier, n);
}

std::string
activeTuningLabel()
{
    ActiveTuning state = snapshotTuning();
    if (state.artifact == nullptr)
        return "none";
    return fingerprintHex(state.artifact->fingerprint);
}

void
reloadTuningFromEnv()
{
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    loadEnvLocked();
}

// ---- Option resolution ---------------------------------------------------

FunctionalGemmOptions
resolveFunctionalOptions(const FunctionalGemmOptions &opts, GemmCombo combo,
                         std::size_t n)
{
    FunctionalGemmOptions resolved = opts;
    if (resolved.blockM > 0 && resolved.blockN > 0 && resolved.blockK > 0 &&
        resolved.threads != 0)
        return resolved; // fully explicit: the artifact never applies
    const TuneEntry *entry = nullptr;
    if (tuningActive())
        entry = activeTuneEntry(combo, resolveSimdTier(opts.simd), n);
    if (resolved.blockM <= 0)
        resolved.blockM = entry ? entry->config.blockM : kDefaultBlockM;
    if (resolved.blockN <= 0)
        resolved.blockN = entry ? entry->config.blockN : kDefaultBlockN;
    if (resolved.blockK <= 0)
        resolved.blockK = entry ? entry->config.blockK : kDefaultBlockK;
    if (resolved.threads == 0 && entry != nullptr)
        resolved.threads = entry->config.threads;
    // threads still 0 (auto, no artifact) falls through to the
    // hardware-concurrency path parallelChunks uses for < 1 values.
    return resolved;
}

// ---- The search ----------------------------------------------------------

TuneSearchResult
tuneSearch(const std::function<TuneMeasurement(const TunedConfig &)> &measure,
           const TuneSearchSpace &space)
{
    TuneSearchResult result;
    double spent = 0.0;
    const auto timed = [&](const TunedConfig &config) {
        TuneMeasurement m = measure(config);
        spent += std::max(m.seconds, 0.0);
        ++result.measured;
        return m;
    };
    const auto workingSet = [&](const TunedConfig &config) {
        return (static_cast<std::size_t>(config.blockM) +
                static_cast<std::size_t>(config.blockK)) *
               static_cast<std::size_t>(config.blockN) * space.accBytes;
    };

    TunedConfig incumbent; // the kDefault* constants
    incumbent.threads = space.threads.empty() ? 1 : space.threads.front();
    const TuneMeasurement base = timed(incumbent);
    result.defaultSeconds = base.seconds;
    result.defaultBound = base.bound;
    result.best = incumbent;
    result.bestSeconds = base.seconds;
    result.bestBound = base.bound;

    struct Dimension
    {
        int TunedConfig::*field;
        const std::vector<int> *candidates;
    };
    const Dimension dimensions[] = {
        {&TunedConfig::blockK, &space.blockK},
        {&TunedConfig::blockN, &space.blockN},
        {&TunedConfig::blockM, &space.blockM},
        {&TunedConfig::threads, &space.threads},
    };
    for (const Dimension &dim : dimensions) {
        for (int value : *dim.candidates) {
            if (value < 1 || value == result.best.*dim.field)
                continue;
            TunedConfig candidate = result.best;
            candidate.*dim.field = value;
            const std::size_t cand_ws = workingSet(candidate);
            const std::size_t best_ws = workingSet(result.best);
            if (result.bestBound == prof::TopdownClass::BackendBound &&
                cand_ws > best_ws) {
                ++result.pruned;
                continue;
            }
            if (result.bestBound == prof::TopdownClass::Retiring &&
                cand_ws * 2 < best_ws) {
                ++result.pruned;
                continue;
            }
            if (spent >= space.budgetSec) {
                result.budgetExhausted = true;
                break;
            }
            const TuneMeasurement m = timed(candidate);
            if (m.seconds > 0.0 &&
                m.seconds < result.bestSeconds * (1.0 - space.minGain)) {
                result.best = candidate;
                result.bestSeconds = m.seconds;
                result.bestBound = m.bound;
            }
        }
        if (result.budgetExhausted)
            break;
    }
    result.speedup = result.bestSeconds > 0.0
                         ? result.defaultSeconds / result.bestSeconds
                         : 1.0;
    return result;
}

} // namespace blas
} // namespace mc
