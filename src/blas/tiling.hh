/**
 * @file
 * The GEMM planner: rocBLAS's two-level tile strategy as an explicit,
 * inspectable plan.
 *
 * rocBLAS (through its Tensile backend) maps an arbitrary GEMM onto
 * Matrix Cores by dividing C into macro-tiles, assigning one workgroup
 * per macro-tile, and having each workgroup iterate MFMA instructions
 * over the K extent. The planner reproduces the decisions the paper
 * observes from outside the library:
 *
 *  - path selection: HGEMM never uses Matrix Cores (no f16 <- f16 MFMA
 *    exists, Table I); HHS/HSS fall back to SIMD for the tiny N = 16
 *    problem (Fig. 8); SGEMM/DGEMM always use Matrix Cores;
 *  - 2*m*n*k matrix-product FLOPs go to Matrix Cores and the 3*m*n
 *    alpha/beta scaling FLOPs go to the SIMDs (the Fig. 9 model);
 *  - HBM traffic follows an A/B-panel L2 reuse model: while a K-deep
 *    macro-tile strip pair fits in L2, panels are re-read from cache;
 *    beyond that, misses grow HBM traffic toward one panel re-read per
 *    tile row/column — which is what bends the large-N throughput
 *    curves of Figs. 6 and 7;
 *  - very large problems switch to a wider macro-tile, restoring
 *    arithmetic intensity (the single-precision recovery near N = 65000).
 */

#ifndef MC_BLAS_TILING_HH
#define MC_BLAS_TILING_HH

#include <cstdint>

#include "arch/calibration.hh"
#include "arch/mfma_isa.hh"
#include "blas/gemm_types.hh"
#include "sim/kernel.hh"

namespace mc {
namespace blas {

/** The fully resolved execution plan of one GEMM. */
struct GemmPlan
{
    bool useMatrixCores = false;
    /** MFMA instruction of the micro-tile (null on the SIMD path). */
    const arch::MfmaInstruction *inst = nullptr;

    int macroTile = 0;       ///< macro-tile edge (square tiles)
    int wavesPerWorkgroup = 4;

    std::size_t paddedM = 0;
    std::size_t paddedN = 0;
    std::size_t paddedK = 0;

    std::uint64_t numWorkgroups = 0;
    std::uint64_t numWavefronts = 0;
    std::uint64_t mfmaInstsTotal = 0;

    double hbmReadBytes = 0.0;
    double hbmWriteBytes = 0.0;
    double bwEfficiency = 1.0;
    /** A/B panel L2 miss fraction of the traffic model (diagnostics). */
    double l2MissFrac = 0.0;

    /** The kernel the simulator will execute. */
    sim::KernelProfile profile;

    /** Functional-backend knobs with every auto (0) field resolved —
     *  against the active tuning artifact when one is loaded
     *  (blas/tune.hh), the built-in defaults otherwise. Verification
     *  paths take their block sizes from here so a plan built once
     *  keeps its configuration for its whole cached lifetime. */
    FunctionalGemmOptions func;
};

/**
 * Tunables of the planner; defaults model the rocBLAS 5.3 behaviour the
 * paper observes. Exposed for the ablation benches.
 */
struct PlannerOptions
{
    /** Macro-tile edge for the Matrix Core path. */
    int macroTile = 128;
    /** Macro-tile edge used once min(M,N) reaches wideTileThreshold. */
    int wideMacroTile = 256;
    std::size_t wideTileThreshold = 49152;
    /** Macro-tile edge of the SIMD fallback path. */
    int simdMacroTile = 64;
    /** Fraction of L2 usable for A/B panel residency. */
    double l2Residency = 0.8;
    /** Streaming-efficiency range of the HBM model. */
    double bwEffBase = 0.55;
    double bwEffOccupancyBonus = 0.25;
    /**
     * Smallest extent for which the mixed-precision (F16-input) path
     * uses Matrix Cores; the paper observes the N = 16 problem running
     * entirely on SIMDs (Fig. 8).
     */
    std::size_t mixedPrecisionMinDim = 32;
};

/**
 * Decide whether the combo/problem runs on Matrix Cores, mirroring the
 * rocBLAS behaviour the paper reverse-engineers.
 */
bool selectsMatrixCorePath(const GemmConfig &config,
                           const PlannerOptions &opts = PlannerOptions());

/** Build the full plan for a GEMM on the given device calibration. */
GemmPlan planGemm(const GemmConfig &config,
                  const arch::Cdna2Calibration &cal,
                  const PlannerOptions &opts = PlannerOptions());

} // namespace blas
} // namespace mc

#endif // MC_BLAS_TILING_HH
