/**
 * @file
 * The fast functional-GEMM backend: cache-blocked, operand-packing,
 * optionally multi-threaded numeric kernels that are *bit-identical*
 * to the scalar reference loops in functional.hh.
 *
 * The bit-exactness invariant, and why blocking preserves it
 * ----------------------------------------------------------
 * IEEE floating-point addition is not associative, so a classically
 * re-associated (multi-accumulator) dot product would change results.
 * This backend never re-associates: every output element (i, j) is
 * produced by ONE accumulator that receives the products
 * widen(a(i,kk)) * widen(b(kk,j)) in ascending-kk order — exactly the
 * scalar loop's order. Speed comes from everything *around* the sum:
 *
 *  - the j loop is innermost (an "axpy" update accs[j] += av * b[kk][j]
 *    across an output row panel), so consecutive iterations update
 *    independent accumulators and vectorize/pipeline instead of
 *    serializing on the FP-add latency chain;
 *  - A and B are widened to the accumulator type once up front
 *    (conversion is exact, so values are unchanged; for float/double
 *    operands the matrix storage is used in place) instead of widening
 *    and bounds-checking every element m*n*k times; the staged panels
 *    are reused across calls through the content-addressed PackCache
 *    and otherwise live in thread-local ScratchArena frames instead of
 *    per-call heap allocations (pack_cache.hh, scratch_arena.hh);
 *  - loops are blocked (blockM x blockN x blockK) so one B panel is
 *    served from cache for a whole block of output rows;
 *  - row blocks fan out across exec::sharedPool workers. Each (i, j)
 *    is computed wholly by one task, so results are independent of the
 *    thread count.
 *
 * The inner kernels are reached through a runtime-dispatched table of
 * explicit-SIMD micro-kernels (simd_kernels.hh): scalar -> SSE2 ->
 * AVX2 -> AVX-512 on x86-64, NEON on aarch64, selected per CPU at
 * startup and overridable via FunctionalGemmOptions::simd or the
 * MC_SIMD environment variable. Vector lanes widen over the j
 * dimension only — distinct j means distinct accumulators, so lane
 * parallelism never re-associates a sum. Every tier TU is compiled
 * with -ffp-contract=off and without FMA codegen flags, so mul and add
 * round separately per lane exactly like the retained scalar reference
 * (the "scalar" tier, instantiated -O3 in fast_gemm.cc), and every
 * tier is bit-identical to it; tests/blas/simd_tier_test.cc enforces
 * this with memcmp.
 */

#ifndef MC_BLAS_FAST_GEMM_HH
#define MC_BLAS_FAST_GEMM_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>

#include "arch/mfma_isa.hh"
#include "blas/gemm_types.hh"
#include "blas/pack_cache.hh"
#include "blas/scratch_arena.hh"
#include "blas/simd_kernels.hh"
#include "common/logging.hh"
#include "common/matrix.hh"
#include "exec/thread_pool.hh"
#include "fp/traits.hh"

namespace mc {
namespace blas {

/**
 * Resolve every auto (0) field of @p opts for one concrete problem:
 * block sizes and thread fan-out come from the active tuning artifact
 * entry for (combo, resolved SIMD tier, tuneBucket(n)) when one is
 * loaded (blas/tune.hh), and from the kDefaultBlock* constants
 * otherwise. Explicit (> 0) fields pass through untouched, and
 * MC_TUNE=off disables the artifact entirely. Results never depend on
 * the outcome — the knobs trade speed only. Defined in tune.cc.
 */
FunctionalGemmOptions resolveFunctionalOptions(
    const FunctionalGemmOptions &opts, GemmCombo combo, std::size_t n);

/** The Table III combo the (TCD, TAB, TAcc, rounding) template
 *  instantiation corresponds to — the tuning-artifact key of the
 *  functional kernels. */
template <typename TCD, typename TAB, typename TAcc>
constexpr GemmCombo
comboForTypes(bool round_each_step)
{
    if constexpr (std::is_same_v<TAcc, double>)
        return GemmCombo::Dgemm;
    else if constexpr (std::is_same_v<TAB, float>)
        return GemmCombo::Sgemm;
    else if constexpr (std::is_same_v<TCD, float>)
        return GemmCombo::Hss;
    else
        return round_each_step ? GemmCombo::Hgemm : GemmCombo::Hhs;
}

namespace detail {

/**
 * The hot kernel: accs[j] += arow[kk] * bpanel[kk * ldb + j] for
 * kk < nk, j < nj, kk ascending — the scalar reference's per-element
 * accumulation order with the j loop innermost.
 */
template <typename T>
void
axpyPanel(const T *arow, const T *bpanel, std::size_t ldb, std::size_t nk,
          T *accs, std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; ++kk) {
        const T av = arow[kk];
        const T *brow = bpanel + kk * ldb;
        for (std::size_t j = 0; j < nj; ++j)
            accs[j] += av * brow[j];
    }
}

/** axpyPanel with subtraction: the TRSM update term. */
template <typename T>
void
axpyPanelSub(const T *arow, const T *bpanel, std::size_t ldb,
             std::size_t nk, T *accs, std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; ++kk) {
        const T av = arow[kk];
        const T *brow = bpanel + kk * ldb;
        for (std::size_t j = 0; j < nj; ++j)
            accs[j] -= av * brow[j];
    }
}

/**
 * axpyPanel with the reduced-precision FMA-chain semantics: after
 * every multiply-add the accumulator is rounded to TNarrow and widened
 * back (referenceGemm's round_each_step — how HGEMM behaves on the
 * VALU path).
 */
template <typename TNarrow, typename TAcc>
void
axpyPanelRound(const TAcc *arow, const TAcc *bpanel, std::size_t ldb,
               std::size_t nk, TAcc *accs, std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; ++kk) {
        const TAcc av = arow[kk];
        const TAcc *brow = bpanel + kk * ldb;
        for (std::size_t j = 0; j < nj; ++j) {
            const TAcc acc = accs[j] + av * brow[j];
            accs[j] = static_cast<TAcc>(
                fp::NumericTraits<TNarrow>::widen(TNarrow(acc)));
        }
    }
}

// The instantiations the five datatype combos reach live in
// fast_gemm.cc, compiled -O3 so the j loops vectorize.
extern template void axpyPanel<float>(const float *, const float *,
                                      std::size_t, std::size_t, float *,
                                      std::size_t);
extern template void axpyPanel<double>(const double *, const double *,
                                       std::size_t, std::size_t, double *,
                                       std::size_t);
extern template void axpyPanelSub<float>(const float *, const float *,
                                         std::size_t, std::size_t, float *,
                                         std::size_t);
extern template void axpyPanelSub<double>(const double *, const double *,
                                          std::size_t, std::size_t,
                                          double *, std::size_t);
extern template void axpyPanelRound<fp::Half, float>(const float *,
                                                     const float *,
                                                     std::size_t,
                                                     std::size_t, float *,
                                                     std::size_t);

/**
 * The SIMD batch-widen kernel for TSrc -> float packing, or nullptr
 * when no such kernel applies (then the scalar per-element loop runs).
 * Half and BFloat16 are single-member standard-layout wrappers over
 * uint16_t, so their storage can be consumed as raw bit patterns.
 */
template <typename TSrc, typename TAcc>
SimdKernels::WidenFn
packWidenKernel(const SimdKernels &ker)
{
    if constexpr (std::is_same_v<TAcc, float>) {
        static_assert(!fp::isReducedFloat<TSrc> ||
                          (sizeof(TSrc) == sizeof(std::uint16_t) &&
                           std::is_standard_layout_v<TSrc>),
                      "reduced floats must be uint16_t wrappers");
        if constexpr (std::is_same_v<TSrc, fp::Half>)
            return ker.widenHalfToF32;
        else if constexpr (std::is_same_v<TSrc, fp::BFloat16>)
            return ker.widenBf16ToF32;
    }
    return nullptr;
}

/**
 * Row-major widened copy of @p in (rows x cols) into @p out with
 * columns zero-padded to @p padded_cols (the packed A layout).
 * Widening is exact, so values are bit-preserved; Half/BFloat16
 * sources go through @p ker's batch-widen kernels (bit-identical to
 * the scalar per-element widen).
 */
template <typename TSrc, typename TAcc>
void
widenPadColsInto(const TSrc *in, std::size_t rows, std::size_t cols,
                 std::size_t padded_cols, TAcc *out,
                 const SimdKernels &ker)
{
    if (padded_cols != cols)
        std::fill_n(out, rows * padded_cols, TAcc(0));
    if (const auto widen = packWidenKernel<TSrc, TAcc>(ker)) {
        const auto *bits = reinterpret_cast<const std::uint16_t *>(in);
        auto *fout = reinterpret_cast<float *>(out);
        if (padded_cols == cols) {
            widen(bits, fout, rows * cols);
        } else {
            for (std::size_t i = 0; i < rows; ++i)
                widen(bits + i * cols, fout + i * padded_cols, cols);
        }
        return;
    }
    for (std::size_t i = 0; i < rows; ++i) {
        TAcc *orow = out + i * padded_cols;
        for (std::size_t j = 0; j < cols; ++j)
            orow[j] = static_cast<TAcc>(
                fp::NumericTraits<TSrc>::widen(in[i * cols + j]));
    }
}

/**
 * Row-major widened copy of @p in (rows x cols) into @p out with zero
 * rows appended up to @p padded_rows (the packed B layout; B is
 * consumed row-wise so its native row-major layout already is the
 * packed layout).
 */
template <typename TSrc, typename TAcc>
void
widenPadRowsInto(const TSrc *in, std::size_t rows, std::size_t cols,
                 std::size_t padded_rows, TAcc *out,
                 const SimdKernels &ker)
{
    if (padded_rows != rows)
        std::fill_n(out + rows * cols, (padded_rows - rows) * cols,
                    TAcc(0));
    if (const auto widen = packWidenKernel<TSrc, TAcc>(ker)) {
        widen(reinterpret_cast<const std::uint16_t *>(in),
              reinterpret_cast<float *>(out), rows * cols);
        return;
    }
    for (std::size_t i = 0; i < rows * cols; ++i)
        out[i] = static_cast<TAcc>(fp::NumericTraits<TSrc>::widen(in[i]));
}

/**
 * Stage one operand into its packed/widened layout, reusing storage in
 * this order:
 *
 *  1. in place — TSrc already is TAcc and no padding is needed (the
 *     float/double fast path; neither the cache nor the fingerprint is
 *     touched, so plain SGEMM/DGEMM pays nothing for the cache);
 *  2. the process-wide PackCache — keyed by a CRC-32 fingerprint of
 *     the source bytes plus shape/type/tier/pad, so repeated-weight
 *     calls skip packing entirely (@p keep pins the entry across
 *     eviction for the duration of the call);
 *  3. the caller's thread-local scratch @p frame when the cache is off.
 *
 * Every path runs the same widenPad*Into routine, so the staged bytes
 * are identical however they were obtained — the backend's
 * bit-exactness contract extends to the cache by construction.
 *
 * @p kind selects the A (WidenA: @p pad pads columns) or B layout
 * (WidenB: @p pad pads rows).
 */
template <typename TSrc, typename TAcc>
const TAcc *
stageWidened(PackKind kind, const TSrc *src, std::size_t rows,
             std::size_t cols, std::size_t pad, const SimdKernels &ker,
             ScratchArena::Frame &frame,
             std::shared_ptr<const PackEntry> &keep)
{
    const bool for_a = kind == PackKind::WidenA;
    mc_assert(for_a ? pad >= cols : pad >= rows,
              "padding below the matrix extent");
    if constexpr (std::is_same_v<TSrc, TAcc>) {
        if (for_a ? pad == cols : pad == rows)
            return src;
    }
    const std::size_t elems = for_a ? rows * pad : pad * cols;
    const auto fill = [&](TAcc *out) {
        if (for_a)
            widenPadColsInto<TSrc, TAcc>(src, rows, cols, pad, out, ker);
        else
            widenPadRowsInto<TSrc, TAcc>(src, rows, cols, pad, out, ker);
    };
    if (PackCache::shouldCache(rows * cols * sizeof(TSrc))) {
        PackKey key;
        key.kind = kind;
        key.srcType = packTypeTag<TSrc>();
        key.accType = packTypeTag<TAcc>();
        key.tier = static_cast<std::uint8_t>(ker.tier);
        key.srcBytes = rows * cols * sizeof(TSrc);
        key.fingerprint =
            packFingerprint(src, static_cast<std::size_t>(key.srcBytes));
        key.rows = rows;
        key.cols = cols;
        key.pad = pad;
        keep = PackCache::instance().findOrPack(
            key, elems * sizeof(TAcc),
            [&](void *out) { fill(static_cast<TAcc *>(out)); });
        return keep->template as<TAcc>();
    }
    TAcc *out = frame.alloc<TAcc>(elems);
    fill(out);
    return out;
}

/**
 * The blocked driver shared by the reference and the tiled-Matrix-Core
 * entry points: D = TCD(alpha * sum_k(pa * pb) + beta * widen(C)) over
 * pre-widened operands, k ascending per element, row blocks fanned
 * across threads.
 */
template <typename TCD, typename TAcc>
void
blockedGemmCore(std::size_t m, std::size_t n, std::size_t k, double alpha,
                const TAcc *pa, std::size_t lda, const TAcc *pb,
                std::size_t ldb, double beta, const TCD *pc, TCD *pd,
                std::size_t ldcd, bool round_each_step,
                const FunctionalGemmOptions &opts)
{
    mc_assert(opts.blockM >= 1 && opts.blockN >= 1 && opts.blockK >= 1,
              "block sizes must be positive");
    const std::size_t bm = static_cast<std::size_t>(opts.blockM);
    const std::size_t bn = static_cast<std::size_t>(opts.blockN);
    const std::size_t bk = static_cast<std::size_t>(opts.blockK);
    const TAcc alpha_acc = static_cast<TAcc>(alpha);
    const TAcc beta_acc = static_cast<TAcc>(beta);
    // Per-step rounding is the identity when TCD and TAcc coincide.
    const bool rounding = round_each_step && !std::is_same_v<TCD, TAcc>;
    // Resolve the SIMD tier once; every worker uses the same kernels,
    // and every tier is bit-identical, so the choice never changes
    // results.
    const SimdKernels &ker = simdKernelsFor(opts.simd);

    exec::parallelChunks(m, bm, opts.threads, [&](std::size_t r0,
                                                  std::size_t r1) {
        const std::size_t rows = r1 - r0;
        ScratchArena::Frame frame;
        TAcc *acc = frame.alloc<TAcc>(rows * bn);
        for (std::size_t j0 = 0; j0 < n; j0 += bn) {
            const std::size_t nj = std::min(bn, n - j0);
            std::fill_n(acc, rows * bn, TAcc(0));
            for (std::size_t k0 = 0; k0 < k; k0 += bk) {
                const std::size_t nk = std::min(bk, k - k0);
                const TAcc *bpanel = pb + k0 * ldb + j0;
                for (std::size_t r = 0; r < rows; ++r) {
                    const TAcc *arow = pa + (r0 + r) * lda + k0;
                    TAcc *accs = acc + r * bn;
                    if (rounding) {
                        if constexpr (std::is_same_v<TCD, fp::Half> &&
                                      std::is_same_v<TAcc, float>)
                            ker.axpyRoundHalfF32(arow, bpanel, ldb, nk,
                                                 accs, nj);
                        else
                            axpyPanelRound<TCD, TAcc>(arow, bpanel, ldb,
                                                      nk, accs, nj);
                    } else if constexpr (std::is_same_v<TAcc, float>) {
                        ker.axpyF32(arow, bpanel, ldb, nk, accs, nj);
                    } else if constexpr (std::is_same_v<TAcc, double>) {
                        ker.axpyF64(arow, bpanel, ldb, nk, accs, nj);
                    } else {
                        axpyPanel<TAcc>(arow, bpanel, ldb, nk, accs, nj);
                    }
                }
            }
            for (std::size_t r = 0; r < rows; ++r) {
                const std::size_t i = r0 + r;
                const TAcc *accs = acc + r * bn;
                const TCD *crow = pc + i * ldcd + j0;
                TCD *drow = pd + i * ldcd + j0;
                for (std::size_t j = 0; j < nj; ++j) {
                    const TAcc scaled =
                        alpha_acc * accs[j] +
                        beta_acc * static_cast<TAcc>(
                                       fp::NumericTraits<TCD>::widen(
                                           crow[j]));
                    drow[j] = TCD(scaled);
                }
            }
        }
    });
}

} // namespace detail

/**
 * Blocked/packed/threaded D = alpha*A*B + beta*C with referenceGemm's
 * exact semantics (see the file comment): the result is bit-identical
 * to the scalar loop for every shape, every option setting, and every
 * thread count.
 */
template <typename TCD, typename TAB, typename TAcc>
void
fastReferenceGemm(double alpha, const Matrix<TAB> &a, const Matrix<TAB> &b,
                  double beta, const Matrix<TCD> &c, Matrix<TCD> &d,
                  bool round_each_step = false,
                  const FunctionalGemmOptions &opts = FunctionalGemmOptions())
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    mc_assert(b.rows() == k, "GEMM inner dimensions disagree");
    mc_assert(c.rows() == m && c.cols() == n, "C shape mismatch");
    mc_assert(d.rows() == m && d.cols() == n, "D shape mismatch");

    const FunctionalGemmOptions ropts = resolveFunctionalOptions(
        opts, comboForTypes<TCD, TAB, TAcc>(round_each_step), n);
    const SimdKernels &ker = simdKernelsFor(ropts.simd);
    ScratchArena::Frame scratch;
    std::shared_ptr<const PackEntry> keep_a, keep_b;
    const TAcc *pa = detail::stageWidened<TAB, TAcc>(
        PackKind::WidenA, a.data(), m, k, k, ker, scratch, keep_a);
    const TAcc *pb = detail::stageWidened<TAB, TAcc>(
        PackKind::WidenB, b.data(), k, n, k, ker, scratch, keep_b);
    detail::blockedGemmCore<TCD, TAcc>(m, n, k, alpha, pa, k, pb, n, beta,
                                       c.data(), d.data(), n,
                                       round_each_step, ropts);
}

/**
 * Blocked/packed/threaded equivalent of tiledMatrixCoreGemm: the k
 * dimension is zero-padded to a multiple of the instruction's k (the
 * executeMfma dataflow chains whole k-slices, and the padding's
 * +0.0 products are part of its accumulation sequence), then the same
 * blocked driver runs without per-step rounding. Bit-identical to the
 * scalar tiled path.
 */
template <typename TCD, typename TAB, typename TAcc>
void
fastTiledMatrixCoreGemm(const arch::MfmaInstruction &inst, double alpha,
                        const Matrix<TAB> &a, const Matrix<TAB> &b,
                        double beta, const Matrix<TCD> &c, Matrix<TCD> &d,
                        const FunctionalGemmOptions &opts =
                            FunctionalGemmOptions())
{
    mc_assert(inst.shape.blocks == 1,
              "the tiled path uses single-block instructions");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    mc_assert(b.rows() == k, "GEMM inner dimensions disagree");
    mc_assert(c.rows() == m && c.cols() == n, "C shape mismatch");
    mc_assert(d.rows() == m && d.cols() == n, "D shape mismatch");

    const std::size_t tk = static_cast<std::size_t>(inst.shape.k);
    const std::size_t kpad = (k + tk - 1) / tk * tk;
    const FunctionalGemmOptions ropts = resolveFunctionalOptions(
        opts, comboForTypes<TCD, TAB, TAcc>(false), n);
    const SimdKernels &ker = simdKernelsFor(ropts.simd);
    ScratchArena::Frame scratch;
    std::shared_ptr<const PackEntry> keep_a, keep_b;
    const TAcc *pa = detail::stageWidened<TAB, TAcc>(
        PackKind::WidenA, a.data(), m, k, kpad, ker, scratch, keep_a);
    const TAcc *pb = detail::stageWidened<TAB, TAcc>(
        PackKind::WidenB, b.data(), k, n, kpad, ker, scratch, keep_b);
    detail::blockedGemmCore<TCD, TAcc>(m, n, kpad, alpha, pa, kpad, pb, n,
                                       beta, c.data(), d.data(), n,
                                       /*round_each_step=*/false, ropts);
}

} // namespace blas
} // namespace mc

#endif // MC_BLAS_FAST_GEMM_HH
