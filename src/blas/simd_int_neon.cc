/**
 * @file
 * NEON tier of the int8 dot ladder (aarch64): kGroup = 4 packed B,
 * 4 columns x 4 k-steps per step. When the target enables the dot-
 * product extension (__ARM_FEATURE_DOTPROD) the reduction is a single
 * sdot; otherwise vmull_s8 widens to i16 (|product| <= 16384, exact)
 * and vpaddlq/vpaddq fold the quads in i32. Both forms are exact
 * integer arithmetic — identical bits to the scalar loop.
 */

#include <arm_neon.h>

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
neonDotI8(const std::int8_t *arow, const std::int8_t *bpack,
          std::size_t ldp, std::size_t nk, std::int32_t *accs,
          std::size_t nj)
{
    for (std::size_t kk = 0; kk < nk; kk += 4) {
        std::uint32_t quad = 0;
        for (int t = 0; t < 4; ++t) {
            quad |= static_cast<std::uint32_t>(
                        static_cast<std::uint8_t>(arow[kk + t]))
                    << (8 * t);
        }
        const int8x16_t va = vreinterpretq_s8_u32(vdupq_n_u32(quad));
        const std::int8_t *bgroup = bpack + kk * ldp;
        std::size_t j = 0;
        for (; j + 4 <= nj; j += 4) {
            const int8x16_t vb = vld1q_s8(bgroup + j * 4);
            int32x4_t acc = vld1q_s32(accs + j);
#if defined(__ARM_FEATURE_DOTPROD)
            acc = vdotq_s32(acc, va, vb);
#else
            const int16x8_t lo =
                vmull_s8(vget_low_s8(va), vget_low_s8(vb));
            const int16x8_t hi =
                vmull_s8(vget_high_s8(va), vget_high_s8(vb));
            acc = vaddq_s32(
                acc, vpaddq_s32(vpaddlq_s16(lo), vpaddlq_s16(hi)));
#endif
            vst1q_s32(accs + j, acc);
        }
        for (; j < nj; ++j) {
            const std::int8_t *bq = bgroup + j * 4;
            std::int32_t sum = 0;
            for (int t = 0; t < 4; ++t)
                sum += static_cast<std::int32_t>(arow[kk + t]) *
                       static_cast<std::int32_t>(bq[t]);
            accs[j] += sum;
        }
    }
}

} // namespace

const Int8Kernels &
neonInt8Kernels()
{
    static const Int8Kernels kernels = {SimdTier::Neon, 4, false,
                                        &neonDotI8};
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
