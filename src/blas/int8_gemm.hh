/**
 * @file
 * The quantized INT8 GEMM path (docs/PERF.md "Integer kernels"):
 * per-tensor affine quantization, int8 x int8 products accumulated
 * exactly in int32, and a requantize epilogue with round-to-nearest-
 * even and int8 saturation.
 *
 * Numeric contract (QuantParams doc): with real = scale * (q - zero),
 *
 *   acc(i,j) = sum_k (A(i,k) - zeroA) * (B(k,j) - zeroB)   // exact i32
 *   D(i,j)   = sat_i8(rne(alpha*effScale*acc + beta*(C - zeroD)) + zeroD)
 *
 * where effScale = scaleA*scaleB/scaleD. The accumulation is exact
 * integer arithmetic, so every SIMD tier — and every block size and
 * thread count — produces bit-identical D; the only rounding lives in
 * requantizeI8, which all paths share. The fast path never subtracts
 * the zero points in the inner loop: the kernels accumulate raw
 * sum a*b, and the driver applies the algebraic correction
 *
 *   acc = raw - zeroA*colsum(B) - zeroB*rowsum(A) + k*zeroA*zeroB
 *
 * in the O(m*n) epilogue.
 */

#ifndef MC_BLAS_INT8_GEMM_HH
#define MC_BLAS_INT8_GEMM_HH

#include <cmath>
#include <cstdint>

#include "blas/gemm_types.hh"
#include "common/matrix.hh"

namespace mc {
namespace blas {

/**
 * Largest supported reduction depth: at k = 32768 the worst-case
 * accumulator |acc| <= k * 255^2 = 2130739200 still fits int32; one
 * more step could overflow. Both entry points assert this bound.
 */
inline constexpr std::size_t kMaxQuantizedK = 32768;

/** The one effective output scale, alpha * scaleA*scaleB/scaleD.
 *  Shared by the scalar and fast paths so both round identically. */
inline double
effectiveQuantScale(double alpha, const QuantParams &qp)
{
    return alpha * (static_cast<double>(qp.scaleA) *
                    static_cast<double>(qp.scaleB) /
                    static_cast<double>(qp.scaleD));
}

/**
 * Requantize one int32 accumulator to int8:
 * sat_i8(rne(eff_scale*acc + beta*(c - zeroD)) + zeroD). nearbyint
 * under the default rounding mode is round-to-nearest, ties-to-even.
 * Inline in the header so tests can sweep it exhaustively.
 */
inline std::int8_t
requantizeI8(std::int32_t acc, double eff_scale, double beta,
             std::int8_t c, const QuantParams &qp)
{
    const double value =
        eff_scale * static_cast<double>(acc) +
        beta * (static_cast<double>(c) - static_cast<double>(qp.zeroD));
    const double shifted =
        std::nearbyint(value) + static_cast<double>(qp.zeroD);
    // The negated first test also catches NaN (degenerate scale
    // inputs), pinning it to the bottom of the range deterministically.
    if (!(shifted > -128.0))
        return std::int8_t{-128};
    if (shifted >= 127.0)
        return std::int8_t{127};
    return static_cast<std::int8_t>(shifted);
}

/** The retained scalar reference: the triple loop, zero points
 *  subtracted in the inner product. Ground truth for every test. */
void scalarQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                         const Matrix<std::int8_t> &b, double beta,
                         const Matrix<std::int8_t> &c,
                         Matrix<std::int8_t> &d, const QuantParams &qp);

/**
 * The blocked/packed fast path: B pre-packed into the dispatched
 * tier's k-group layout (simd_int_kernels.hh), rows fanned across
 * opts.threads, zero points corrected in the epilogue. Bit-identical
 * to scalarQuantizedGemm for every tier/block/thread setting.
 */
void fastQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                       const Matrix<std::int8_t> &b, double beta,
                       const Matrix<std::int8_t> &c,
                       Matrix<std::int8_t> &d, const QuantParams &qp,
                       const FunctionalGemmOptions &opts = {});

/**
 * True strided-batched quantized GEMM: D_e = requant(A_e * B_e, C_e)
 * over @p batch entries at element strides (rocBLAS strided-batched
 * convention; a zero operand stride broadcasts — and stages — one
 * matrix across the batch, the attention-weights case; C/D strides
 * must be nonzero for batch > 1). Each entry is bit-identical to
 * fastQuantizedGemm on the same slices; staging goes through the
 * PackCache/ScratchArena reuse layer (pack_cache.hh).
 */
void fastBatchedQuantizedGemm(std::size_t batch, double alpha,
                              const std::int8_t *a, std::size_t stride_a,
                              const std::int8_t *b, std::size_t stride_b,
                              double beta, const std::int8_t *c,
                              std::size_t stride_c, std::int8_t *d,
                              std::size_t stride_d, std::size_t m,
                              std::size_t n, std::size_t k,
                              const QuantParams &qp,
                              const FunctionalGemmOptions &opts = {});

/** Dispatch on opts.forceScalar, like referenceGemm for the floats. */
void quantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                   const Matrix<std::int8_t> &b, double beta,
                   const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
                   const QuantParams &qp,
                   const FunctionalGemmOptions &opts = {});

} // namespace blas
} // namespace mc

#endif // MC_BLAS_INT8_GEMM_HH
