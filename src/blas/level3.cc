#include "level3.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mc {
namespace blas {

namespace {

/**
 * Derating of the triangular/symmetric kernels relative to the
 * equivalent GEMM: the diagonal-block inversions and the triangular
 * grid edges cost a little pipeline efficiency.
 */
constexpr double trsmEfficiency = 0.88;
constexpr double syrkEfficiency = 0.95;

/**
 * Scale a GEMM-equivalent plan's Matrix Core work to @p fraction of
 * the full rectangular problem and re-derive the exact counter and
 * FLOP bookkeeping for an algorithmic volume of @p algo_flops.
 */
void
scalePlanWork(GemmPlan &plan, double fraction, double algo_flops,
              double extra_derate)
{
    for (auto &seg : plan.profile.mfmaPerWavefront) {
        seg.countPerWavefront = static_cast<std::uint64_t>(
            std::max<double>(1.0,
                             static_cast<double>(seg.countPerWavefront) *
                                 fraction));
    }
    plan.mfmaInstsTotal = static_cast<std::uint64_t>(
        static_cast<double>(plan.mfmaInstsTotal) * fraction);
    plan.profile.mcEfficiency *= extra_derate;
    plan.profile.mfmaFlopsOverride = algo_flops;

    if (plan.profile.countersOverride && plan.inst != nullptr) {
        // Rebuild the MFMA counter bank from the scaled totals.
        sim::HwCounters counters = *plan.profile.countersOverride;
        const int bank = sim::counterTypeIndex(plan.inst->typeAB);
        counters.mfmaMops[bank] =
            plan.mfmaInstsTotal *
            static_cast<std::uint64_t>(plan.inst->flopsPerInstruction()) /
            sim::mopsGranularity;
        counters.mfmaInstructions = plan.mfmaInstsTotal;
        plan.profile.countersOverride = counters;
    }

    plan.hbmReadBytes *= fraction;
    plan.hbmWriteBytes *= fraction;
    plan.profile.hbmReadBytes = plan.hbmReadBytes;
    plan.profile.hbmWriteBytes = plan.hbmWriteBytes;
}

} // namespace

Result<GemmResult>
Level3Engine::runTrsm(const TrsmConfig &config)
{
    if (config.m == 0 || config.n == 0)
        return Status::invalidArgument("TRSM dimensions must be positive");

    // GEMM-equivalent problem: the blocked algorithm performs the same
    // volume of multiply-adds as an (m x n x m) or (m x n x n) GEMM,
    // halved by the triangular shape.
    GemmConfig gemm;
    gemm.combo = config.combo;
    gemm.m = config.m;
    gemm.n = config.n;
    gemm.k = config.side == Side::Left ? config.m : config.n;
    gemm.alpha = config.alpha;
    gemm.beta = 0.0;
    gemm.device = config.device;

    GemmPlan plan = _engine.plan(gemm);
    plan.profile.label =
        std::string(comboInfo(config.combo).name) + "_trsm";
    if (plan.useMatrixCores)
        scalePlanWork(plan, 0.5, config.flops(), trsmEfficiency);

    GemmResult result;
    // Operands: triangular A plus in-place B.
    const auto &info = comboInfo(config.combo);
    const std::size_t tri = config.side == Side::Left ? config.m
                                                      : config.n;
    const std::size_t bytes =
        tri * tri * arch::dataTypeBytes(info.typeAB) / 2 +
        config.m * config.n * arch::dataTypeBytes(info.typeCD);
    hip::Runtime &rt = _engine.runtime();
    auto buf = rt.malloc(config.device, bytes);
    if (!buf.isOk())
        return buf.status();
    result.kernel = rt.launch(plan.profile, config.device);
    result.usedMatrixCores = plan.useMatrixCores;
    result.macroTile = plan.macroTile;
    rt.free(buf.value());
    return result;
}

Result<GemmResult>
Level3Engine::runSyrk(const SyrkConfig &config)
{
    if (config.n == 0 || config.k == 0)
        return Status::invalidArgument("SYRK dimensions must be positive");

    GemmConfig gemm;
    gemm.combo = config.combo;
    gemm.m = config.n;
    gemm.n = config.n;
    gemm.k = config.k;
    gemm.alpha = config.alpha;
    gemm.beta = config.beta;
    gemm.device = config.device;

    GemmPlan plan = _engine.plan(gemm);
    plan.profile.label =
        std::string(comboInfo(config.combo).name) + "_syrk";
    if (plan.useMatrixCores)
        scalePlanWork(plan, 0.5, config.flops(), syrkEfficiency);

    GemmResult result;
    const auto &info = comboInfo(config.combo);
    const std::size_t bytes =
        config.n * config.k * arch::dataTypeBytes(info.typeAB) +
        config.n * config.n * arch::dataTypeBytes(info.typeCD) / 2;
    hip::Runtime &rt = _engine.runtime();
    auto buf = rt.malloc(config.device, bytes);
    if (!buf.isOk())
        return buf.status();
    result.kernel = rt.launch(plan.profile, config.device);
    result.usedMatrixCores = plan.useMatrixCores;
    result.macroTile = plan.macroTile;
    rt.free(buf.value());
    return result;
}

Result<GemmResult>
Level3Engine::runGemv(const GemvConfig &config)
{
    if (config.m == 0 || config.n == 0)
        return Status::invalidArgument("GEMV dimensions must be positive");

    const auto &info = comboInfo(config.combo);
    const auto &cal = _engine.runtime().gpu().calibration();

    sim::KernelProfile profile;
    profile.label = std::string(info.name) + "_gemv";
    profile.scheduleMode = sim::ScheduleMode::Fluid;

    // One workgroup per 256-row slab, four wavefronts each.
    const std::uint64_t wgs = (config.m + 255) / 256;
    profile.numWorkgroups = wgs;
    profile.numWavefronts = wgs * 4;

    // 2mn FLOPs as VALU FMAs in the compute type.
    const std::uint64_t macs =
        static_cast<std::uint64_t>(config.m) * config.n;
    if (info.computeType == arch::DataType::F16) {
        profile.addValu(arch::DataType::F16, sim::ValuOp::Fma,
                        (macs + 127) / 128, 4);
    } else {
        profile.addValu(info.computeType, sim::ValuOp::Fma,
                        (macs + 63) / 64, 2);
    }
    if (config.alpha != 1.0 || config.beta != 0.0) {
        profile.addValu(info.computeType, sim::ValuOp::Mul,
                        (config.m + 63) / 64, 1);
    }

    // Streaming A dominates the traffic; x is reused from L2.
    profile.hbmReadBytes =
        static_cast<double>(macs) * arch::dataTypeBytes(info.typeAB) +
        static_cast<double>(config.n) * arch::dataTypeBytes(info.typeAB);
    profile.hbmWriteBytes =
        static_cast<double>(config.m) * arch::dataTypeBytes(info.typeCD);
    profile.bwEfficiency = 0.85; // long contiguous rows stream well
    profile.simdEfficiency = cal.simdGemmEfficiency;
    profile.mfmaFlopsOverride = 0.0;

    GemmResult result;
    hip::Runtime &rt = _engine.runtime();
    const std::size_t bytes =
        macs * arch::dataTypeBytes(info.typeAB) +
        (config.m + config.n) * arch::dataTypeBytes(info.typeCD);
    auto buf = rt.malloc(config.device, bytes);
    if (!buf.isOk())
        return buf.status();
    result.kernel = rt.launch(profile, config.device);
    result.usedMatrixCores = false;
    result.macroTile = 0;
    rt.free(buf.value());
    return result;
}

} // namespace blas
} // namespace mc
