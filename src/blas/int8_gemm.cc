#include "int8_gemm.hh"

#include <algorithm>
#include <limits>

#include "blas/pack_cache.hh"
#include "blas/scratch_arena.hh"
#include "blas/simd_int_kernels.hh"
#include "blas/tune.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"

namespace mc {
namespace blas {

namespace {

void
validateQuantShapes(std::size_t m, std::size_t n, std::size_t k,
                    const QuantParams &qp)
{
    mc_assert(k <= kMaxQuantizedK,
              "quantizedGemm: k beyond the int32 accumulator bound");
    mc_assert(std::isfinite(qp.scaleA) && qp.scaleA > 0.0f &&
                  std::isfinite(qp.scaleB) && qp.scaleB > 0.0f &&
                  std::isfinite(qp.scaleD) && qp.scaleD > 0.0f,
              "quantizedGemm: scales must be positive and finite");
    mc_assert(qp.zeroA >= -128 && qp.zeroA <= 127 && qp.zeroB >= -128 &&
                  qp.zeroB <= 127 && qp.zeroD >= -128 && qp.zeroD <= 127,
              "quantizedGemm: zero points must lie in int8 range");
    (void)m;
    (void)n;
}

void
validateQuantProblem(const Matrix<std::int8_t> &a,
                     const Matrix<std::int8_t> &b,
                     const Matrix<std::int8_t> &c,
                     const Matrix<std::int8_t> &d, const QuantParams &qp)
{
    mc_assert(b.rows() == a.cols(), "quantizedGemm: A/B depth mismatch");
    mc_assert(c.rows() == a.rows() && c.cols() == b.cols(),
              "quantizedGemm: C shape mismatch");
    mc_assert(d.rows() == a.rows() && d.cols() == b.cols(),
              "quantizedGemm: D shape mismatch");
    validateQuantShapes(a.rows(), b.cols(), a.cols(), qp);
}

// ---- Staging routines (the bytes, however obtained, are identical) ---

void
padAInto(const std::int8_t *a, std::size_t m, std::size_t k,
         std::size_t kp, std::int8_t *out)
{
    std::fill_n(out, m * kp, std::int8_t{0});
    for (std::size_t i = 0; i < m; ++i)
        std::copy_n(a + i * k, k, out + i * kp);
}

/** B in the tier's k-group layout (simd_int_kernels.hh). */
void
packBInto(const std::int8_t *b, std::size_t k, std::size_t n,
          std::size_t kp, std::size_t g, std::int8_t *out)
{
    std::fill_n(out, kp * n, std::int8_t{0});
    for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int8_t *brow = b + kk * n;
        std::int8_t *dst = out + (kk / g) * n * g + (kk % g);
        for (std::size_t j = 0; j < n; ++j)
            dst[j * g] = brow[j];
    }
}

/** Operand sums for the zero-point correction (and the VNNI +128
 *  bias). |rowsum| <= 32768 * 128 — comfortably int32. */
void
rowSumInto(const std::int8_t *a, std::size_t m, std::size_t k,
           std::int32_t *out)
{
    for (std::size_t i = 0; i < m; ++i) {
        const std::int8_t *arow = a + i * k;
        std::int32_t sum = 0;
        for (std::size_t kk = 0; kk < k; ++kk)
            sum += arow[kk];
        out[i] = sum;
    }
}

void
colSumInto(const std::int8_t *b, std::size_t k, std::size_t n,
           std::int32_t *out)
{
    std::fill_n(out, n, 0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int8_t *brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j)
            out[j] += brow[j];
    }
}

/** Cache-or-arena staging of one int8 byproduct; @p fingerprint is the
 *  source operand's CRC (computed once per operand and shared by its
 *  pack and sum entries). */
template <typename TOut, typename Fill>
const TOut *
stageI8(PackKind kind, std::uint8_t tier, std::uint32_t fingerprint,
        std::size_t src_bytes, std::size_t rows, std::size_t cols,
        std::size_t pad, std::size_t out_elems, ScratchArena::Frame &frame,
        std::shared_ptr<const PackEntry> &keep, const Fill &fill)
{
    if (PackCache::shouldCache(src_bytes)) {
        PackKey key;
        key.kind = kind;
        key.srcType = packTypeTag<std::int8_t>();
        key.accType = packTypeTag<TOut>();
        key.tier = tier;
        key.fingerprint = fingerprint;
        key.srcBytes = src_bytes;
        key.rows = rows;
        key.cols = cols;
        key.pad = pad;
        keep = PackCache::instance().findOrPack(
            key, out_elems * sizeof(TOut),
            [&](void *out) { fill(static_cast<TOut *>(out)); });
        return keep->template as<TOut>();
    }
    TOut *out = frame.alloc<TOut>(out_elems);
    fill(out);
    return out;
}

/** The staged inputs one quantized GEMM consumes. */
struct I8Staged
{
    const std::int8_t *abase = nullptr;
    std::size_t lda = 0;
    const std::int8_t *bpack = nullptr;
    const std::int32_t *rowsum = nullptr;
    const std::int32_t *colsum = nullptr;
    std::shared_ptr<const PackEntry> keep[4];
};

I8Staged
stageQuantizedA(const std::int8_t *a, std::size_t m, std::size_t k,
                std::size_t kp, std::uint8_t tier,
                ScratchArena::Frame &frame)
{
    I8Staged staged;
    const std::size_t src_bytes = m * k;
    const std::uint32_t crc =
        PackCache::shouldCache(src_bytes) ? packFingerprint(a, src_bytes)
                                          : 0;
    if (kp == k) {
        staged.abase = a;
        staged.lda = k;
    } else {
        staged.abase = stageI8<std::int8_t>(
            PackKind::I8PadA, tier, crc, src_bytes, m, k, kp, m * kp,
            frame, staged.keep[0],
            [&](std::int8_t *out) { padAInto(a, m, k, kp, out); });
        staged.lda = kp;
    }
    staged.rowsum = stageI8<std::int32_t>(
        PackKind::I8RowSum, tier, crc, src_bytes, m, k, 0, m, frame,
        staged.keep[1],
        [&](std::int32_t *out) { rowSumInto(a, m, k, out); });
    return staged;
}

void
stageQuantizedB(I8Staged &staged, const std::int8_t *b, std::size_t k,
                std::size_t n, std::size_t kp, std::size_t g,
                std::uint8_t tier, ScratchArena::Frame &frame)
{
    const std::size_t src_bytes = k * n;
    const std::uint32_t crc =
        PackCache::shouldCache(src_bytes) ? packFingerprint(b, src_bytes)
                                          : 0;
    staged.bpack = stageI8<std::int8_t>(
        PackKind::I8PackB, tier, crc, src_bytes, k, n, kp, kp * n, frame,
        staged.keep[2],
        [&](std::int8_t *out) { packBInto(b, k, n, kp, g, out); });
    staged.colsum = stageI8<std::int32_t>(
        PackKind::I8ColSum, tier, crc, src_bytes, k, n, 0, n, frame,
        staged.keep[3],
        [&](std::int32_t *out) { colSumInto(b, k, n, out); });
}

/** The blocked multiply/epilogue over staged inputs: bit-identical to
 *  scalarQuantizedGemm by exact integer arithmetic. */
void
quantizedCore(std::size_t m, std::size_t n, std::size_t k, std::size_t kp,
              double alpha, const I8Staged &staged, double beta,
              const std::int8_t *c, std::int8_t *d, const QuantParams &qp,
              const Int8Kernels &ker, const FunctionalGemmOptions &res)
{
    const std::size_t g = ker.kGroup;
    const std::size_t bm = static_cast<std::size_t>(res.blockM);
    const std::size_t bn = static_cast<std::size_t>(res.blockN);
    const std::size_t bk =
        (static_cast<std::size_t>(res.blockK) + 3) / 4 * 4;

    const double eff = effectiveQuantScale(alpha, qp);
    const std::int64_t za = qp.zeroA;
    const std::int64_t zb = qp.zeroB;
    const std::int64_t kzz = static_cast<std::int64_t>(k) * za * zb;
    const std::int64_t abias = ker.biasA128 ? 128 : 0;

    exec::parallelChunks(m, bm, res.threads, [&](std::size_t i0,
                                                 std::size_t i1) {
        ScratchArena::Frame frame;
        std::int32_t *accs = frame.alloc<std::int32_t>(bn);
        for (std::size_t i = i0; i < i1; ++i) {
            const std::int8_t *arow = staged.abase + i * staged.lda;
            for (std::size_t j0 = 0; j0 < n; j0 += bn) {
                const std::size_t nj = std::min(bn, n - j0);
                std::fill_n(accs, nj, 0);
                for (std::size_t k0 = 0; k0 < kp; k0 += bk) {
                    const std::size_t nk = std::min(bk, kp - k0);
                    // Panel origin: (k0/g)*n*g + j0*g = k0*n + j0*g
                    // since g divides k0.
                    ker.dotI8(arow + k0, staged.bpack + k0 * n + j0 * g,
                              n, nk, accs, nj);
                }
                for (std::size_t j = 0; j < nj; ++j) {
                    const std::size_t col = j0 + j;
                    const std::int64_t acc =
                        static_cast<std::int64_t>(accs[j]) -
                        (abias + za) * staged.colsum[col] -
                        zb * staged.rowsum[i] + kzz;
                    mc_assert(
                        acc >= std::numeric_limits<std::int32_t>::min() &&
                            acc <= std::numeric_limits<std::int32_t>::max(),
                        "quantizedGemm: corrected accumulator overflow");
                    d[i * n + col] =
                        requantizeI8(static_cast<std::int32_t>(acc), eff,
                                     beta, c[i * n + col], qp);
                }
            }
        }
    });
}

} // namespace

void
scalarQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                    const Matrix<std::int8_t> &b, double beta,
                    const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
                    const QuantParams &qp)
{
    validateQuantProblem(a, b, c, d, qp);
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    const double eff = effectiveQuantScale(alpha, qp);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += (static_cast<std::int32_t>(a(i, kk)) - qp.zeroA) *
                       (static_cast<std::int32_t>(b(kk, j)) - qp.zeroB);
            }
            d(i, j) = requantizeI8(acc, eff, beta, c(i, j), qp);
        }
    }
}

void
fastQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                  const Matrix<std::int8_t> &b, double beta,
                  const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
                  const QuantParams &qp, const FunctionalGemmOptions &opts)
{
    validateQuantProblem(a, b, c, d, qp);
    fastBatchedQuantizedGemm(1, alpha, a.data(), 0, b.data(), 0, beta,
                             c.data(), 0, d.data(), 0, a.rows(), b.cols(),
                             a.cols(), qp, opts);
}

void
fastBatchedQuantizedGemm(std::size_t batch, double alpha,
                         const std::int8_t *a, std::size_t stride_a,
                         const std::int8_t *b, std::size_t stride_b,
                         double beta, const std::int8_t *c,
                         std::size_t stride_c, std::int8_t *d,
                         std::size_t stride_d, std::size_t m,
                         std::size_t n, std::size_t k,
                         const QuantParams &qp,
                         const FunctionalGemmOptions &opts)
{
    validateQuantShapes(m, n, k, qp);
    mc_assert(stride_c != 0 || batch <= 1,
              "batched quantizedGemm: C entries may not alias");
    mc_assert(stride_d != 0 || batch <= 1,
              "batched quantizedGemm: D entries may not alias");

    const FunctionalGemmOptions res =
        resolveFunctionalOptions(opts, GemmCombo::I8gemm, n);
    const Int8Kernels &ker = int8KernelsFor(res.simd);
    const std::uint8_t tier = static_cast<std::uint8_t>(ker.tier);

    // Pad k to a multiple of 4 (every tier's group divides 4) with
    // zeros on both operands — zero products leave the sum exact. The
    // panel depth also rounds up so panel origins stay group-aligned.
    const std::size_t kp = (k + 3) / 4 * 4;

    // Shared (stride-0) operands stage once for the whole batch; the
    // weight-side B pack and column sums are the expensive ones.
    ScratchArena::Frame shared_frame;
    I8Staged shared_a;
    bool have_shared_a = false;
    I8Staged shared_b;
    bool have_shared_b = false;
    if (stride_a == 0) {
        shared_a = stageQuantizedA(a, m, k, kp, tier, shared_frame);
        have_shared_a = true;
    }
    if (stride_b == 0) {
        stageQuantizedB(shared_b, b, k, n, kp, ker.kGroup, tier,
                        shared_frame);
        have_shared_b = true;
    }

    for (std::size_t e = 0; e < batch; ++e) {
        ScratchArena::Frame frame;
        I8Staged staged =
            have_shared_a
                ? shared_a
                : stageQuantizedA(a + e * stride_a, m, k, kp, tier, frame);
        if (have_shared_b) {
            staged.bpack = shared_b.bpack;
            staged.colsum = shared_b.colsum;
        } else {
            stageQuantizedB(staged, b + e * stride_b, k, n, kp,
                            ker.kGroup, tier, frame);
        }
        quantizedCore(m, n, k, kp, alpha, staged, beta, c + e * stride_c,
                      d + e * stride_d, qp, ker, res);
    }
}

void
quantizedGemm(double alpha, const Matrix<std::int8_t> &a,
              const Matrix<std::int8_t> &b, double beta,
              const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
              const QuantParams &qp, const FunctionalGemmOptions &opts)
{
    if (opts.forceScalar)
        scalarQuantizedGemm(alpha, a, b, beta, c, d, qp);
    else
        fastQuantizedGemm(alpha, a, b, beta, c, d, qp, opts);
}

} // namespace blas
} // namespace mc
