#include "int8_gemm.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "blas/simd_int_kernels.hh"
#include "blas/tune.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"

namespace mc {
namespace blas {

namespace {

void
validateQuantProblem(const Matrix<std::int8_t> &a,
                     const Matrix<std::int8_t> &b,
                     const Matrix<std::int8_t> &c,
                     const Matrix<std::int8_t> &d, const QuantParams &qp)
{
    mc_assert(b.rows() == a.cols(), "quantizedGemm: A/B depth mismatch");
    mc_assert(c.rows() == a.rows() && c.cols() == b.cols(),
              "quantizedGemm: C shape mismatch");
    mc_assert(d.rows() == a.rows() && d.cols() == b.cols(),
              "quantizedGemm: D shape mismatch");
    mc_assert(a.cols() <= kMaxQuantizedK,
              "quantizedGemm: k beyond the int32 accumulator bound");
    mc_assert(std::isfinite(qp.scaleA) && qp.scaleA > 0.0f &&
                  std::isfinite(qp.scaleB) && qp.scaleB > 0.0f &&
                  std::isfinite(qp.scaleD) && qp.scaleD > 0.0f,
              "quantizedGemm: scales must be positive and finite");
    mc_assert(qp.zeroA >= -128 && qp.zeroA <= 127 && qp.zeroB >= -128 &&
                  qp.zeroB <= 127 && qp.zeroD >= -128 && qp.zeroD <= 127,
              "quantizedGemm: zero points must lie in int8 range");
}

} // namespace

void
scalarQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                    const Matrix<std::int8_t> &b, double beta,
                    const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
                    const QuantParams &qp)
{
    validateQuantProblem(a, b, c, d, qp);
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    const double eff = effectiveQuantScale(alpha, qp);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += (static_cast<std::int32_t>(a(i, kk)) - qp.zeroA) *
                       (static_cast<std::int32_t>(b(kk, j)) - qp.zeroB);
            }
            d(i, j) = requantizeI8(acc, eff, beta, c(i, j), qp);
        }
    }
}

void
fastQuantizedGemm(double alpha, const Matrix<std::int8_t> &a,
                  const Matrix<std::int8_t> &b, double beta,
                  const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
                  const QuantParams &qp, const FunctionalGemmOptions &opts)
{
    validateQuantProblem(a, b, c, d, qp);
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();

    const FunctionalGemmOptions res =
        resolveFunctionalOptions(opts, GemmCombo::I8gemm, n);
    const Int8Kernels &ker = int8KernelsFor(res.simd);
    const std::size_t g = ker.kGroup;

    // Pad k to a multiple of 4 (every tier's group divides 4) with
    // zeros on both operands — zero products leave the sum exact. The
    // panel depth also rounds up so panel origins stay group-aligned.
    const std::size_t kp = (k + 3) / 4 * 4;
    const std::size_t bm = static_cast<std::size_t>(res.blockM);
    const std::size_t bn = static_cast<std::size_t>(res.blockN);
    const std::size_t bk =
        (static_cast<std::size_t>(res.blockK) + 3) / 4 * 4;

    const std::int8_t *abase = a.data();
    std::size_t lda = k;
    std::vector<std::int8_t> apad;
    if (kp != k) {
        apad.assign(m * kp, 0);
        for (std::size_t i = 0; i < m; ++i)
            std::copy_n(a.data() + i * k, k, apad.data() + i * kp);
        abase = apad.data();
        lda = kp;
    }

    // B in the tier's k-group layout (simd_int_kernels.hh).
    std::vector<std::int8_t> bpack(kp * n, 0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int8_t *brow = b.data() + kk * n;
        std::int8_t *dst = bpack.data() + (kk / g) * n * g + (kk % g);
        for (std::size_t j = 0; j < n; ++j)
            dst[j * g] = brow[j];
    }

    // Operand sums for the zero-point correction (and the VNNI +128
    // bias). |rowsum| <= 32768 * 128 — comfortably int32.
    std::vector<std::int32_t> rowsum(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
        const std::int8_t *arow = a.data() + i * k;
        for (std::size_t kk = 0; kk < k; ++kk)
            rowsum[i] += arow[kk];
    }
    std::vector<std::int32_t> colsum(n, 0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int8_t *brow = b.data() + kk * n;
        for (std::size_t j = 0; j < n; ++j)
            colsum[j] += brow[j];
    }

    const double eff = effectiveQuantScale(alpha, qp);
    const std::int64_t za = qp.zeroA;
    const std::int64_t zb = qp.zeroB;
    const std::int64_t kzz = static_cast<std::int64_t>(k) * za * zb;
    const std::int64_t abias = ker.biasA128 ? 128 : 0;

    exec::parallelChunks(m, bm, res.threads, [&](std::size_t i0,
                                                 std::size_t i1) {
        std::vector<std::int32_t> accs(bn);
        for (std::size_t i = i0; i < i1; ++i) {
            const std::int8_t *arow = abase + i * lda;
            for (std::size_t j0 = 0; j0 < n; j0 += bn) {
                const std::size_t nj = std::min(bn, n - j0);
                std::fill(accs.begin(), accs.begin() + nj, 0);
                for (std::size_t k0 = 0; k0 < kp; k0 += bk) {
                    const std::size_t nk = std::min(bk, kp - k0);
                    // Panel origin: (k0/g)*n*g + j0*g = k0*n + j0*g
                    // since g divides k0.
                    ker.dotI8(arow + k0, bpack.data() + k0 * n + j0 * g,
                              n, nk, accs.data(), nj);
                }
                for (std::size_t j = 0; j < nj; ++j) {
                    const std::size_t col = j0 + j;
                    const std::int64_t acc =
                        static_cast<std::int64_t>(accs[j]) -
                        (abias + za) * colsum[col] - zb * rowsum[i] + kzz;
                    mc_assert(
                        acc >= std::numeric_limits<std::int32_t>::min() &&
                            acc <= std::numeric_limits<std::int32_t>::max(),
                        "quantizedGemm: corrected accumulator overflow");
                    d(i, col) =
                        requantizeI8(static_cast<std::int32_t>(acc), eff,
                                     beta, c(i, col), qp);
                }
            }
        }
    });
}

void
quantizedGemm(double alpha, const Matrix<std::int8_t> &a,
              const Matrix<std::int8_t> &b, double beta,
              const Matrix<std::int8_t> &c, Matrix<std::int8_t> &d,
              const QuantParams &qp, const FunctionalGemmOptions &opts)
{
    if (opts.forceScalar)
        scalarQuantizedGemm(alpha, a, b, beta, c, d, qp);
    else
        fastQuantizedGemm(alpha, a, b, beta, c, d, qp, opts);
}

} // namespace blas
} // namespace mc
