/**
 * @file
 * The per-tier micro-kernel table the fast functional-GEMM backend
 * dispatches through.
 *
 * Each SIMD tier (src/blas/simd_scalar.cc, simd_sse2.cc, simd_avx2.cc,
 * simd_avx512.cc, simd_neon.cc) fills one SimdKernels with function
 * pointers implementing the same contracts as the scalar templates in
 * fast_gemm.hh / fp/convert.hh — and the same *bits*: every kernel
 * widens across the j (column) lanes of a panel, so each output
 * element keeps exactly one accumulator fed in ascending-k order, with
 * multiply and add rounded separately (the tier translation units are
 * compiled -ffp-contract=off and never enable FMA). The conversion
 * kernels reproduce the software Half/BFloat16 rounding bit-for-bit,
 * which tests/fp/simd_convert_test.cc checks exhaustively.
 */

#ifndef MC_BLAS_SIMD_KERNELS_HH
#define MC_BLAS_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "blas/simd_dispatch.hh"

namespace mc {
namespace blas {

/**
 * Function-pointer table of one tier's kernels. All pointers are
 * always non-null; the scalar tier fills them with the retained
 * reference loops.
 */
struct SimdKernels
{
    /** accs[j] (+=|-=) arow[kk] * bpanel[kk*ldb + j], kk ascending. */
    using AxpyF32 = void (*)(const float *arow, const float *bpanel,
                             std::size_t ldb, std::size_t nk, float *accs,
                             std::size_t nj);
    using AxpyF64 = void (*)(const double *arow, const double *bpanel,
                             std::size_t ldb, std::size_t nk, double *accs,
                             std::size_t nj);
    /** Batched bit-pattern conversions (fp/convert.hh semantics). */
    using WidenFn = void (*)(const std::uint16_t *in, float *out,
                             std::size_t n);
    using NarrowFn = void (*)(const float *in, std::uint16_t *out,
                              std::size_t n);

    SimdTier tier = SimdTier::Scalar;
    AxpyF32 axpyF32 = nullptr;
    AxpyF32 axpySubF32 = nullptr;
    /** The round_each_step HGEMM chain: after every mul+add the
     *  accumulator is rounded to binary16 (software-Half-exact RNE)
     *  and widened back. */
    AxpyF32 axpyRoundHalfF32 = nullptr;
    AxpyF64 axpyF64 = nullptr;
    AxpyF64 axpySubF64 = nullptr;
    WidenFn widenHalfToF32 = nullptr;
    WidenFn widenBf16ToF32 = nullptr;
    NarrowFn narrowF32ToHalf = nullptr;
    NarrowFn narrowF32ToBf16 = nullptr;
};

/** The kernel table of a *resolved* tier (asserts tier != Auto). */
const SimdKernels &simdKernels(SimdTier resolved);

/** resolveSimdTier + simdKernels in one call — what the GEMM driver,
 *  TRSM/SYRK and the packing paths use. */
const SimdKernels &simdKernelsFor(SimdTier requested);

namespace detail {

// Defined by the tier translation units cmake compiles in; only the
// dispatcher (simd_dispatch.cc) calls these directly.
const SimdKernels &scalarSimdKernels();
#if defined(MC_SIMD_HAVE_X86)
const SimdKernels &sse2SimdKernels();
const SimdKernels &avx2SimdKernels();
const SimdKernels &avx512SimdKernels();
#endif
#if defined(MC_SIMD_HAVE_NEON)
const SimdKernels &neonSimdKernels();
#endif

} // namespace detail

} // namespace blas
} // namespace mc

#endif // MC_BLAS_SIMD_KERNELS_HH
