/**
 * @file
 * SSE2 tier of the int8 dot ladder: kGroup = 2 packed B, sign-extend
 * the pair bytes to i16 and reduce with pmaddwd. Every i16 product of
 * two int8 values fits (|p| <= 16384) and pmaddwd sums the pair in
 * i32, so the arithmetic is exact — identical bits to the scalar loop.
 *
 * pmaddubsw is deliberately *not* used: its intermediate i16 sum
 * saturates, which would break the exactness contract.
 */

#include <emmintrin.h>

#include "blas/simd_int_kernels.hh"

namespace mc {
namespace blas {
namespace detail {

namespace {

void
sse2DotI8(const std::int8_t *arow, const std::int8_t *bpack,
          std::size_t ldp, std::size_t nk, std::int32_t *accs,
          std::size_t nj)
{
    const __m128i zero = _mm_setzero_si128();
    for (std::size_t kk = 0; kk < nk; kk += 2) {
        const std::int32_t a0 = arow[kk];
        const std::int32_t a1 = arow[kk + 1];
        const std::uint32_t pair =
            (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a1))
             << 16) |
            static_cast<std::uint16_t>(a0);
        const __m128i va =
            _mm_set1_epi32(static_cast<std::int32_t>(pair));
        const std::int8_t *bgroup = bpack + kk * ldp;
        std::size_t j = 0;
        for (; j + 8 <= nj; j += 8) {
            const __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bgroup + j * 2));
            // SSE2 sign-extension idiom: place each byte in the high
            // half of an i16 lane, then arithmetic-shift back down.
            const __m128i lo =
                _mm_srai_epi16(_mm_unpacklo_epi8(zero, raw), 8);
            const __m128i hi =
                _mm_srai_epi16(_mm_unpackhi_epi8(zero, raw), 8);
            __m128i acc0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(accs + j));
            __m128i acc1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(accs + j + 4));
            acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(va, lo));
            acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(va, hi));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(accs + j),
                             acc0);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(accs + j + 4),
                             acc1);
        }
        for (; j < nj; ++j) {
            accs[j] += a0 * static_cast<std::int32_t>(bgroup[j * 2]) +
                       a1 * static_cast<std::int32_t>(bgroup[j * 2 + 1]);
        }
    }
}

} // namespace

const Int8Kernels &
sse2Int8Kernels()
{
    static const Int8Kernels kernels = {SimdTier::Sse2, 2, false,
                                        &sse2DotI8};
    return kernels;
}

} // namespace detail
} // namespace blas
} // namespace mc
