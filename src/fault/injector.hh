/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * The paper's methodology is built on long unattended measurement
 * campaigns — >= 1000 SMI power samples per kernel, GEMM sweeps to
 * N = 65536 that end in genuine device-memory exhaustion. Real
 * campaigns on real machines also see *transient* trouble: sensor
 * polls that return nothing, allocations that fail once and succeed on
 * retry, thermal-throttle episodes, the occasional ECC event. This
 * module simulates that trouble so the layers above it can be tested
 * for graceful degradation.
 *
 * Determinism contract: every injection decision is drawn from a
 * per-site xoshiro256** stream derived (splitmix64) from one 64-bit
 * seed. A sweep point that owns its injector and seeds it from the
 * sweep engine's (bench, point, repetition) hash therefore sees the
 * same faults at --jobs 8 as at --jobs 1 — faulted runs stay
 * byte-identical across job counts, exactly like measurement noise
 * (see docs/SWEEP_ENGINE.md and docs/RESILIENCE.md).
 */

#ifndef MC_FAULT_INJECTOR_HH
#define MC_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.hh"
#include "common/status.hh"

namespace mc {
namespace fault {

/** Places in the stack where a fault can be injected. */
enum class FaultSite
{
    HbmAlloc,     ///< hip::Runtime::malloc — transient allocation failure
    HipApi,       ///< hip::Runtime launch paths — transient API error
    EccCorrectable,   ///< sim device — correctable ECC event (scrub stall)
    EccUncorrectable, ///< sim device — uncorrectable ECC event (DataLoss)
    Throttle,     ///< sim device — thermal-throttle episode
    Hang,         ///< sim device — kernel wedges (deadline test)
    SmiDropout,   ///< smi sampler — poll returns no sample
    SmiStale,     ///< smi sensor — poll repeats the previous reading
};

/** Number of FaultSite values. */
inline constexpr int numFaultSites = 8;

/** Human-readable site name (matches the --inject key). */
const char *faultSiteName(FaultSite site);

/**
 * Per-site fault probabilities, all in [0, 1] per opportunity.
 *
 * An "opportunity" is one visit to the site: one malloc call, one
 * kernel launch, one sampler poll.
 */
struct FaultSpec
{
    double probabilities[numFaultSites] = {};

    double
    probability(FaultSite site) const
    {
        return probabilities[static_cast<int>(site)];
    }

    void
    setProbability(FaultSite site, double p)
    {
        probabilities[static_cast<int>(site)] = p;
    }

    /** True when any site has a nonzero probability. */
    bool any() const;

    /** Canonical "key=value,..." form (omits zero entries). */
    std::string toString() const;
};

/**
 * Parse an --inject specification, e.g.
 * "ecc=1e-3,oom=0.01,smi_dropout=0.05".
 *
 * Keys: oom, hip, ecc, ecc_fatal, throttle, hang, smi_dropout,
 * smi_stale. Values must parse as doubles in [0, 1]. The empty string
 * yields an all-zero spec. Unknown keys and out-of-range values are
 * InvalidArgument.
 */
Result<FaultSpec> parseFaultSpec(std::string_view text);

/**
 * Draws injection decisions from deterministic per-site streams.
 *
 * One injector belongs to one sweep point (like the device's noise
 * stream): sites hold a raw pointer to it via sim::SimOptions, so the
 * owner must outlive the devices and sensors it is wired into, and a
 * shared device must not be driven from several threads with one
 * injector. A default-constructed injector is disabled and never
 * fires.
 */
class Injector
{
  public:
    /** A disabled injector: every fire() is false, no state advances. */
    Injector() = default;

    /** Inject per @p spec, streams derived from @p seed. */
    Injector(const FaultSpec &spec, std::uint64_t seed);

    /** Restart every site stream from @p seed (same derivation). */
    void reseed(std::uint64_t seed);

    /** True when constructed with a spec that can fire. */
    bool enabled() const { return _enabled; }

    const FaultSpec &spec() const { return _spec; }

    /**
     * Draw the next decision at @p site: true with the site's
     * configured probability. Advances only that site's stream, so
     * e.g. extra sampler polls never shift allocation decisions.
     */
    bool fire(FaultSite site);

    /** Decisions drawn at @p site so far. */
    std::uint64_t drawsAt(FaultSite site) const;

    /** Faults injected at @p site so far. */
    std::uint64_t firedAt(FaultSite site) const;

    /** Total faults injected across all sites. */
    std::uint64_t firedTotal() const;

  private:
    FaultSpec _spec;
    std::array<Rng, numFaultSites> _rngs;
    std::array<std::uint64_t, numFaultSites> _draws = {};
    std::array<std::uint64_t, numFaultSites> _fired = {};
    bool _enabled = false;
};

/**
 * Derive the injection seed for one sweep point from the sweep
 * engine's point seed. Salted so the fault streams are independent of
 * the measurement-noise stream seeded from the same point hash.
 */
std::uint64_t faultSeed(std::uint64_t point_seed);

} // namespace fault
} // namespace mc

#endif // MC_FAULT_INJECTOR_HH
