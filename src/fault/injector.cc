#include "injector.hh"

#include <charconv>
#include <cstdio>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mc {
namespace fault {

namespace {

/** --inject key for each site, in FaultSite order. */
constexpr const char *siteKeys[numFaultSites] = {
    "oom",         // HbmAlloc
    "hip",         // HipApi
    "ecc",         // EccCorrectable
    "ecc_fatal",   // EccUncorrectable
    "throttle",    // Throttle
    "hang",        // Hang
    "smi_dropout", // SmiDropout
    "smi_stale",   // SmiStale
};

} // namespace

const char *
faultSiteName(FaultSite site)
{
    const int idx = static_cast<int>(site);
    mc_assert(idx >= 0 && idx < numFaultSites, "invalid FaultSite");
    return siteKeys[idx];
}

bool
FaultSpec::any() const
{
    for (double p : probabilities)
        if (p > 0.0)
            return true;
    return false;
}

std::string
FaultSpec::toString() const
{
    std::string out;
    for (int i = 0; i < numFaultSites; ++i) {
        if (probabilities[i] <= 0.0)
            continue;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",",
                      siteKeys[i], probabilities[i]);
        out += buf;
    }
    return out;
}

Result<FaultSpec>
parseFaultSpec(std::string_view text)
{
    FaultSpec spec;
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        std::string_view entry = text.substr(0, comma);
        text = comma == std::string_view::npos
                   ? std::string_view{}
                   : text.substr(comma + 1);
        if (entry.empty())
            continue;

        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
            return Status::invalidArgument(
                "fault spec entry '" + std::string(entry) +
                "' is not key=probability");
        }
        const std::string_view key = entry.substr(0, eq);
        const std::string_view val = entry.substr(eq + 1);

        int site = -1;
        for (int i = 0; i < numFaultSites; ++i) {
            if (key == siteKeys[i]) {
                site = i;
                break;
            }
        }
        if (site < 0) {
            return Status::invalidArgument(
                "unknown fault site '" + std::string(key) +
                "' (expected one of oom, hip, ecc, ecc_fatal, throttle, "
                "hang, smi_dropout, smi_stale)");
        }

        double p = 0.0;
        const auto [end, ec] =
            std::from_chars(val.data(), val.data() + val.size(), p);
        if (ec != std::errc{} || end != val.data() + val.size()) {
            return Status::invalidArgument(
                "fault probability '" + std::string(val) +
                "' for '" + std::string(key) + "' is not a number");
        }
        if (!(p >= 0.0 && p <= 1.0)) {
            return Status::invalidArgument(
                "fault probability for '" + std::string(key) +
                "' must be in [0, 1], got " + std::string(val));
        }
        spec.probabilities[site] = p;
    }
    return spec;
}

Injector::Injector(const FaultSpec &spec, std::uint64_t seed)
    : _spec(spec), _enabled(spec.any())
{
    reseed(seed);
}

void
Injector::reseed(std::uint64_t seed)
{
    // Each site gets an independent stream so decisions at one site
    // (e.g. thousands of SMI polls) never perturb another's sequence.
    for (int i = 0; i < numFaultSites; ++i)
        _rngs[i] = Rng(mix64(hashCombine(seed, std::uint64_t(i) + 1)));
    _draws.fill(0);
    _fired.fill(0);
}

bool
Injector::fire(FaultSite site)
{
    if (!_enabled)
        return false;
    const int idx = static_cast<int>(site);
    const double p = _spec.probabilities[idx];
    if (p <= 0.0)
        return false;
    ++_draws[idx];
    const bool hit = _rngs[idx].nextDouble() < p;
    if (hit)
        ++_fired[idx];
    return hit;
}

std::uint64_t
Injector::drawsAt(FaultSite site) const
{
    return _draws[static_cast<int>(site)];
}

std::uint64_t
Injector::firedAt(FaultSite site) const
{
    return _fired[static_cast<int>(site)];
}

std::uint64_t
Injector::firedTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : _fired)
        total += n;
    return total;
}

std::uint64_t
faultSeed(std::uint64_t point_seed)
{
    return mix64(hashCombine(point_seed, hashString("mc.fault")));
}

} // namespace fault
} // namespace mc
