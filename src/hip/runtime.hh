/**
 * @file
 * A HIP-runtime-shaped facade over the simulated MI250X.
 *
 * The paper's benchmarks talk to the GPU through the HIP runtime: device
 * enumeration (each GCD appears as its own device), device memory
 * allocation, event-based kernel timing, and kernel launches. This
 * module reproduces those interaction patterns against the simulator so
 * the benchmark code reads like the original HIP code.
 *
 * Buffers default to *virtual* allocations: capacity accounting without
 * host backing, so a 50 GB GEMM operand can be "allocated" the way the
 * paper allocates it (and exhaust device memory the same way) without
 * consuming host RAM. Functional kernels materialize their buffers.
 */

#ifndef MC_HIP_RUNTIME_HH
#define MC_HIP_RUNTIME_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hh"
#include "sim/device.hh"

namespace mc {
namespace hip {

/** Opaque handle to a device allocation. */
struct BufferId
{
    std::uint64_t id = 0;
    friend bool operator==(const BufferId &, const BufferId &) = default;
    friend auto operator<=>(const BufferId &, const BufferId &) = default;
};

/** Device properties, in the spirit of hipGetDeviceProperties. */
struct DeviceProperties
{
    std::string name;
    std::uint64_t totalGlobalMem = 0; ///< bytes
    int multiProcessorCount = 0;      ///< CUs
    int clockRateKhz = 0;
    int warpSize = 64;
    int matrixCores = 0;
};

/** Timestamp recorded on the device timeline (hipEvent_t). */
struct Event
{
    double timeSec = 0.0;
    bool recorded = false;
};

/**
 * The simulated runtime: owns the device model, its allocations, and
 * the device timeline.
 */
class Runtime
{
  public:
    explicit Runtime(const arch::Cdna2Calibration &cal = arch::defaultCdna2(),
                     const sim::SimOptions &opts = sim::SimOptions());

    /** Number of visible devices (one per GCD, as on real MI250X). */
    int deviceCount() const;

    /** Properties of device @p device. */
    DeviceProperties properties(int device) const;

    /** The underlying package model. */
    sim::Mi250x &gpu() { return _gpu; }
    const sim::Mi250x &gpu() const { return _gpu; }

    // ---- Memory ---------------------------------------------------------

    /**
     * Allocate @p bytes on @p device.
     *
     * @param materialize when true, host backing storage is allocated
     *        and zero-initialized so functional kernels can use it.
     * @return the buffer handle, or OutOfMemory when the GCD's HBM is
     *         exhausted (the condition that ends the paper's GEMM sweep).
     */
    Result<BufferId> malloc(int device, std::size_t bytes,
                            bool materialize = false);

    /** Release an allocation; unknown handles are a fatal error. */
    void free(BufferId buffer);

    /** Bytes currently allocated on @p device. */
    std::size_t allocatedBytes(int device) const;

    /** Free HBM remaining on @p device, bytes. */
    std::size_t freeBytes(int device) const;

    /** Host backing of a materialized buffer; null for virtual ones. */
    std::byte *hostPtr(BufferId buffer);
    const std::byte *hostPtr(BufferId buffer) const;

    /** Size in bytes of an allocation. */
    std::size_t bufferBytes(BufferId buffer) const;

    // ---- Kernel execution ------------------------------------------------

    /** Launch a kernel on one device (GCD). */
    sim::KernelResult launch(const sim::KernelProfile &profile, int device);

    /** Launch the same kernel concurrently on several devices. */
    sim::KernelResult launchMulti(const sim::KernelProfile &profile,
                                  const std::vector<int> &devices);

    // ---- Asynchronous (stream) execution ----------------------------------

    /**
     * Enqueue a kernel on @p device's asynchronous timeline: it starts
     * when the device's previous async work finishes, and kernels on
     * *different* devices overlap — the paper's one-process-per-GCD
     * measurement setup. The returned result carries the async-
     * timeline start/end. Package DVFS coupling between concurrently
     * running GCDs is not modelled on this path; use asyncPowerOk()
     * to check the merged power against the regulation target.
     */
    sim::KernelResult launchAsync(const sim::KernelProfile &profile,
                                  int device);

    /** End of @p device's async timeline, seconds. */
    double deviceTailSec(int device) const;

    /** End of the latest async work across all devices, seconds. */
    double asyncTailSec() const;

    /** The merged package power view of the async timeline. */
    const sim::ContributionTrace &asyncTrace() const { return _asyncTrace; }

    /**
     * True when the merged async power never exceeded the package
     * power-regulation target over [start, end) — the condition under
     * which ignoring cross-GCD DVFS coupling is exact.
     */
    bool asyncPowerOk(double start_sec, double end_sec) const;

    // ---- Events ----------------------------------------------------------

    /** Record the current device-timeline time into @p event. */
    void eventRecord(Event &event);

    /** Elapsed milliseconds between two recorded events. */
    float eventElapsedMs(const Event &start, const Event &stop) const;

  private:
    /**
     * When the launch-site injector fires, fill @p result with a
     * zero-cost Unavailable outcome and return true (the kernel did
     * not run).
     */
    bool injectLaunchFault(const sim::KernelProfile &profile,
                           sim::KernelResult &result);

    struct Allocation
    {
        int device = 0;
        std::size_t bytes = 0;
        std::vector<std::byte> storage; ///< empty for virtual buffers
    };

    const Allocation &lookup(BufferId buffer) const;

    sim::Mi250x _gpu;
    std::map<BufferId, Allocation> _allocations;
    std::vector<std::size_t> _allocatedPerDevice;
    std::vector<double> _deviceTailSec;
    sim::ContributionTrace _asyncTrace;
    std::uint64_t _nextBufferId = 1;
};

/**
 * An ordered asynchronous work queue on one device (hipStream_t).
 *
 * Kernels submitted to one stream execute in order; streams bound to
 * different devices overlap in simulated time. Streams on the same
 * device also serialize (each GCD runs one kernel at a time).
 */
class Stream
{
  public:
    /** Bind a stream to @p device of @p rt; rt must outlive it. */
    Stream(Runtime &rt, int device);

    int device() const { return _device; }

    /** Enqueue a kernel; returns its async-timeline result. */
    sim::KernelResult launch(const sim::KernelProfile &profile);

    /**
     * Wait for everything enqueued so far (hipStreamSynchronize);
     * returns the stream's completion time on the async timeline.
     */
    double synchronize() const;

  private:
    Runtime *_rt;
    int _device;
};

/**
 * Typed RAII view of a device allocation.
 *
 * @tparam T element type.
 */
template <typename T>
class DeviceBuffer
{
  public:
    /** Allocate @p count elements on @p device; fatal on OOM. */
    DeviceBuffer(Runtime &rt, int device, std::size_t count,
                 bool materialize = false)
        : _rt(&rt), _count(count)
    {
        auto result = rt.malloc(device, count * sizeof(T), materialize);
        if (!result.isOk())
            mc_fatal("device allocation failed: ",
                     result.status().toString());
        _id = result.value();
    }

    DeviceBuffer(const DeviceBuffer &) = delete;
    DeviceBuffer &operator=(const DeviceBuffer &) = delete;

    DeviceBuffer(DeviceBuffer &&other) noexcept
        : _rt(other._rt), _id(other._id), _count(other._count)
    {
        other._rt = nullptr;
    }

    ~DeviceBuffer()
    {
        if (_rt)
            _rt->free(_id);
    }

    BufferId id() const { return _id; }
    std::size_t count() const { return _count; }
    std::size_t bytes() const { return _count * sizeof(T); }

    /** Typed host pointer; null for virtual buffers. */
    T *
    data()
    {
        return reinterpret_cast<T *>(_rt->hostPtr(_id));
    }

    const T *
    data() const
    {
        return reinterpret_cast<const T *>(
            static_cast<const Runtime *>(_rt)->hostPtr(_id));
    }

  private:
    Runtime *_rt;
    BufferId _id;
    std::size_t _count;
};

} // namespace hip
} // namespace mc

#endif // MC_HIP_RUNTIME_HH
