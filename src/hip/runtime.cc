#include "runtime.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace mc {
namespace hip {

Runtime::Runtime(const arch::Cdna2Calibration &cal,
                 const sim::SimOptions &opts)
    : _gpu(cal, opts),
      _allocatedPerDevice(cal.gcdsPerPackage, 0),
      _deviceTailSec(cal.gcdsPerPackage, 0.0),
      _asyncTrace(cal.idlePowerW)
{}

int
Runtime::deviceCount() const
{
    return _gpu.calibration().gcdsPerPackage;
}

DeviceProperties
Runtime::properties(int device) const
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");
    const auto &cal = _gpu.calibration();
    DeviceProperties props;
    std::ostringstream name;
    name << cal.deviceName << " (simulated GCD " << device << ")";
    props.name = name.str();
    props.totalGlobalMem = cal.hbmBytesPerGcd;
    props.multiProcessorCount = cal.cusPerGcd;
    props.clockRateKhz = static_cast<int>(cal.clockHz / 1000.0);
    props.warpSize = cal.wavefrontSize;
    props.matrixCores = cal.matrixCoresPerGcd();
    return props;
}

Result<BufferId>
Runtime::malloc(int device, std::size_t bytes, bool materialize)
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");

    // A transient allocation failure (fragmentation, a neighbour
    // briefly holding pages) is Unavailable — retriable — unlike the
    // genuine capacity exhaustion below, which no retry can fix.
    fault::Injector *faults = _gpu.options().faults;
    if (faults && faults->fire(fault::FaultSite::HbmAlloc)) {
        std::ostringstream msg;
        msg << "transient allocation failure of " << bytes
            << " bytes on device " << device << " (injected)";
        return Status::unavailable(msg.str());
    }

    const std::size_t capacity = _gpu.calibration().hbmBytesPerGcd;
    if (_allocatedPerDevice[device] + bytes > capacity) {
        std::ostringstream msg;
        msg << "allocation of " << bytes << " bytes exceeds device "
            << device << " HBM capacity (" << _allocatedPerDevice[device]
            << " of " << capacity << " bytes in use)";
        return Status::outOfMemory(msg.str());
    }

    Allocation alloc;
    alloc.device = device;
    alloc.bytes = bytes;
    if (materialize)
        alloc.storage.assign(bytes, std::byte{0});

    const BufferId id{_nextBufferId++};
    _allocations.emplace(id, std::move(alloc));
    _allocatedPerDevice[device] += bytes;
    return id;
}

void
Runtime::free(BufferId buffer)
{
    auto it = _allocations.find(buffer);
    mc_assert(it != _allocations.end(),
              "free of unknown buffer id ", buffer.id);
    _allocatedPerDevice[it->second.device] -= it->second.bytes;
    _allocations.erase(it);
}

std::size_t
Runtime::allocatedBytes(int device) const
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");
    return _allocatedPerDevice[device];
}

std::size_t
Runtime::freeBytes(int device) const
{
    return _gpu.calibration().hbmBytesPerGcd - allocatedBytes(device);
}

const Runtime::Allocation &
Runtime::lookup(BufferId buffer) const
{
    auto it = _allocations.find(buffer);
    mc_assert(it != _allocations.end(),
              "unknown buffer id ", buffer.id);
    return it->second;
}

std::byte *
Runtime::hostPtr(BufferId buffer)
{
    auto &alloc = const_cast<Allocation &>(lookup(buffer));
    return alloc.storage.empty() ? nullptr : alloc.storage.data();
}

const std::byte *
Runtime::hostPtr(BufferId buffer) const
{
    const auto &alloc = lookup(buffer);
    return alloc.storage.empty() ? nullptr : alloc.storage.data();
}

std::size_t
Runtime::bufferBytes(BufferId buffer) const
{
    return lookup(buffer).bytes;
}

bool
Runtime::injectLaunchFault(const sim::KernelProfile &profile,
                           sim::KernelResult &result)
{
    fault::Injector *faults = _gpu.options().faults;
    if (!faults || !faults->fire(fault::FaultSite::HipApi))
        return false;
    // The launch call itself failed (transient runtime error); the
    // kernel never ran, so no timeline advances and no power is drawn.
    result = sim::KernelResult{};
    result.label = profile.label;
    result.fault = ErrorCode::Unavailable;
    return true;
}

sim::KernelResult
Runtime::launch(const sim::KernelProfile &profile, int device)
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");
    sim::KernelResult faulted;
    if (injectLaunchFault(profile, faulted))
        return faulted;
    return _gpu.runOnGcd(profile, device);
}

sim::KernelResult
Runtime::launchMulti(const sim::KernelProfile &profile,
                     const std::vector<int> &devices)
{
    sim::KernelResult faulted;
    if (injectLaunchFault(profile, faulted))
        return faulted;
    return _gpu.run(profile, devices);
}

sim::KernelResult
Runtime::launchAsync(const sim::KernelProfile &profile, int device)
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");
    sim::KernelResult faulted;
    if (injectLaunchFault(profile, faulted))
        return faulted;
    sim::KernelResult result = _gpu.measureKernel(profile);
    result.startSec = _deviceTailSec[device];
    result.endSec = result.startSec + result.seconds;
    _deviceTailSec[device] = result.endSec;

    // The contribution above idle: measureKernel reports single-GCD
    // package power (idle + this GCD's share), so subtracting idle
    // leaves exactly this kernel's share; overlapping contributions
    // then sum to the package-level Eq. 3 power.
    _asyncTrace.addContribution(
        result.startSec, result.endSec,
        std::max(0.0, result.avgPowerW - _gpu.powerModel().idleWatts()));
    return result;
}

double
Runtime::deviceTailSec(int device) const
{
    mc_assert(device >= 0 && device < deviceCount(),
              "device ", device, " out of range");
    return _deviceTailSec[device];
}

double
Runtime::asyncTailSec() const
{
    double tail = 0.0;
    for (double t : _deviceTailSec)
        tail = std::max(tail, t);
    return tail;
}

bool
Runtime::asyncPowerOk(double start_sec, double end_sec) const
{
    return _asyncTrace.maxWatts(start_sec, end_sec) <=
           _gpu.powerModel().governorTargetWatts();
}

Stream::Stream(Runtime &rt, int device) : _rt(&rt), _device(device)
{
    mc_assert(device >= 0 && device < rt.deviceCount(),
              "stream device ", device, " out of range");
}

sim::KernelResult
Stream::launch(const sim::KernelProfile &profile)
{
    return _rt->launchAsync(profile, _device);
}

double
Stream::synchronize() const
{
    return _rt->deviceTailSec(_device);
}

void
Runtime::eventRecord(Event &event)
{
    event.timeSec = _gpu.timelineSec();
    event.recorded = true;
}

float
Runtime::eventElapsedMs(const Event &start, const Event &stop) const
{
    mc_assert(start.recorded && stop.recorded,
              "elapsed time requires two recorded events");
    return static_cast<float>((stop.timeSec - start.timeSec) * 1e3);
}

} // namespace hip
} // namespace mc
