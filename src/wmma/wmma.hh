/**
 * @file
 * A rocWMMA-style wave matrix multiply-accumulate API.
 *
 * rocWMMA abstracts the Matrix Core register layouts behind C++
 * "fragment" objects: load_matrix_sync / store_matrix_sync move matrix
 * tiles between memory and registers without the user knowing the
 * in-register layout, and mma_sync performs the fused multiply-add on
 * Matrix Cores. This module reproduces that API against the simulator:
 * a Fragment holds the full wavefront's view of one operand (the
 * simulator is host-side, so the 64 per-thread slices live together),
 * and mma_sync executes functionally through the register layouts while
 * recording the instruction into the active KernelRecorder for timing.
 *
 * Shape/type validity is checked against the instruction table of the
 * target architecture, mirroring the cross-platform constraint the paper
 * highlights: the same WMMA source runs on CDNA2 and Ampere only when
 * the fragment configuration exists on both.
 */

#ifndef MC_WMMA_WMMA_HH
#define MC_WMMA_WMMA_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "arch/layout.hh"
#include "arch/mfma_exec.hh"
#include "arch/mfma_isa.hh"
#include "common/logging.hh"
#include "fp/traits.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace wmma {

/** Which operand of D <- A*B + C a fragment holds. */
enum class FragmentUse
{
    MatrixA,
    MatrixB,
    Accumulator,
};

/** Memory layout of the source/destination matrix tile. */
enum class MemLayout
{
    RowMajor,
    ColMajor,
};

namespace detail {

/** Map a C++ storage type to its arch::DataType tag. */
template <typename T>
constexpr arch::DataType
dataTypeOf()
{
    if constexpr (std::is_same_v<T, double>)
        return arch::DataType::F64;
    else if constexpr (std::is_same_v<T, float>)
        return arch::DataType::F32;
    else if constexpr (std::is_same_v<T, fp::Half>)
        return arch::DataType::F16;
    else if constexpr (std::is_same_v<T, fp::BFloat16>)
        return arch::DataType::BF16;
    else if constexpr (std::is_same_v<T, std::int8_t>)
        return arch::DataType::I8;
    else if constexpr (std::is_same_v<T, std::int32_t>)
        return arch::DataType::I32;
    else
        static_assert(!sizeof(T), "unsupported WMMA element type");
}

/** Operand role of a fragment use (Accumulator loads use C's layout). */
constexpr arch::Operand
operandOf(FragmentUse use)
{
    switch (use) {
      case FragmentUse::MatrixA: return arch::Operand::A;
      case FragmentUse::MatrixB: return arch::Operand::B;
      case FragmentUse::Accumulator: return arch::Operand::C;
    }
    return arch::Operand::C;
}

} // namespace detail

/**
 * Check whether an M x N x K (x Blocks) fragment configuration with
 * the given A/B and C/D element types maps to a Matrix (or Tensor)
 * Core instruction on @p target.
 */
template <typename TCD, typename TAB>
bool
shapeSupported(int m, int n, int k,
               arch::GpuArch target = arch::GpuArch::Cdna2,
               int blocks = 1)
{
    return arch::findInstruction(target, detail::dataTypeOf<TCD>(),
                                 detail::dataTypeOf<TAB>(),
                                 arch::MfmaShape{m, n, k, blocks}) !=
           nullptr;
}

/**
 * A wavefront-collective operand fragment.
 *
 * @tparam Use operand role.
 * @tparam M,N,K MFMA shape the fragment belongs to.
 * @tparam T element storage type.
 * @tparam Blocks independent matrices the instruction processes in
 *         parallel (Section II's "up to four parallel MFMA
 *         operations"; 1 for the dense shapes).
 * @tparam Target architecture whose instruction provides the layout.
 */
template <FragmentUse Use, int M, int N, int K, typename T,
          int Blocks = 1, arch::GpuArch Target = arch::GpuArch::Cdna2>
class Fragment
{
  public:
    /**
     * Build the fragment, resolving the backing instruction. The C/D
     * type must be supplied for A/B fragments via lookup from the
     * matching mma_sync call; to keep the API close to rocWMMA, the
     * fragment resolves its layout against *any* table instruction of
     * this shape whose A/B (or C/D) type matches — layouts within the
     * family are identical by construction.
     */
    Fragment()
    {
        const arch::MfmaShape shape{M, N, K, Blocks};
        const arch::DataType dt = detail::dataTypeOf<T>();
        for (const auto &inst : arch::instructionsFor(Target)) {
            if (inst.shape != shape)
                continue;
            const bool matches =
                (Use == FragmentUse::Accumulator) ? inst.typeCD == dt
                                                  : inst.typeAB == dt;
            if (matches) {
                _inst = &inst;
                break;
            }
        }
        if (_inst == nullptr) {
            mc_fatal("no ", arch::gpuArchName(Target), " instruction backs a ",
                     M, "x", N, "x", K, Blocks > 1 ? "xB" : "", " ",
                     fp::NumericTraits<T>::name, " ",
                     Use == FragmentUse::Accumulator ? "accumulator"
                                                     : "multiplicand",
                     " fragment");
        }
        _layout = arch::OperandLayout(*_inst, detail::operandOf(Use));
        _regs = arch::FragmentRegs<T>(_layout->waveSize(),
                                      _layout->elementsPerLane());
    }

    /** The instruction whose layout this fragment uses. */
    const arch::MfmaInstruction &instruction() const { return *_inst; }

    /** Per-lane register storage. */
    arch::FragmentRegs<T> &regs() { return _regs; }
    const arch::FragmentRegs<T> &regs() const { return _regs; }

    /** Total elements across the wavefront. */
    std::size_t
    numElements() const
    {
        return static_cast<std::size_t>(_layout->waveSize()) *
               _layout->elementsPerLane();
    }

    /** The operand layout (rows/cols and register mapping). */
    const arch::OperandLayout &layout() const { return *_layout; }

  private:
    const arch::MfmaInstruction *_inst = nullptr;
    std::optional<arch::OperandLayout> _layout;
    arch::FragmentRegs<T> _regs;
};

/** Set every element of a fragment to @p value. */
template <FragmentUse Use, int M, int N, int K, typename T, int Blocks,
          arch::GpuArch Target>
void
fill_fragment(Fragment<Use, M, N, K, T, Blocks, Target> &frag, T value)
{
    for (auto &e : frag.regs().laneData)
        e = value;
}

/**
 * Load one block's tile from memory into a fragment.
 *
 * @param ptr base of the tile.
 * @param ld leading dimension of the source matrix in elements.
 * @param block which independent block to fill (multi-block shapes).
 * @param layout memory order of the source matrix.
 */
template <FragmentUse Use, int M, int N, int K, typename T, int Blocks,
          arch::GpuArch Target>
void
load_matrix_block_sync(Fragment<Use, M, N, K, T, Blocks, Target> &frag,
                       const T *ptr, std::size_t ld, int block,
                       MemLayout layout = MemLayout::RowMajor)
{
    const auto &ol = frag.layout();
    mc_assert(block >= 0 && block < ol.blocks(),
              "block ", block, " out of range for fragment");
    mc_assert(ld >= static_cast<std::size_t>(
                  layout == MemLayout::RowMajor ? ol.cols() : ol.rows()),
              "leading dimension too small for fragment tile");
    for (int r = 0; r < ol.rows(); ++r) {
        for (int c = 0; c < ol.cols(); ++c) {
            const std::size_t idx =
                layout == MemLayout::RowMajor
                    ? static_cast<std::size_t>(r) * ld + c
                    : static_cast<std::size_t>(c) * ld + r;
            const arch::RegLocation loc =
                ol.locationOf(arch::ElementCoord{block, r, c});
            frag.regs().at(loc.lane, loc.slot) = ptr[idx];
        }
    }
    KernelRecorder::active().noteFragmentLoad(
        static_cast<std::uint64_t>(ol.rows()) * ol.cols() * sizeof(T));
}

/**
 * Load a fragment from memory. For multi-block fragments the blocks'
 * tiles are read from consecutive tile-sized slabs of @p ptr.
 */
template <FragmentUse Use, int M, int N, int K, typename T, int Blocks,
          arch::GpuArch Target>
void
load_matrix_sync(Fragment<Use, M, N, K, T, Blocks, Target> &frag,
                 const T *ptr, std::size_t ld,
                 MemLayout layout = MemLayout::RowMajor)
{
    const auto &ol = frag.layout();
    const std::size_t tile_elems =
        static_cast<std::size_t>(ol.rows()) * ol.cols();
    for (int blk = 0; blk < ol.blocks(); ++blk)
        load_matrix_block_sync(frag, ptr + blk * tile_elems, ld, blk,
                               layout);
}

/** Store one block's tile of a fragment back to memory. */
template <FragmentUse Use, int M, int N, int K, typename T, int Blocks,
          arch::GpuArch Target>
void
store_matrix_block_sync(T *ptr,
                        const Fragment<Use, M, N, K, T, Blocks, Target> &frag,
                        std::size_t ld, int block,
                        MemLayout layout = MemLayout::RowMajor)
{
    const auto &ol = frag.layout();
    mc_assert(block >= 0 && block < ol.blocks(),
              "block ", block, " out of range for fragment");
    mc_assert(ld >= static_cast<std::size_t>(
                  layout == MemLayout::RowMajor ? ol.cols() : ol.rows()),
              "leading dimension too small for fragment tile");
    for (int r = 0; r < ol.rows(); ++r) {
        for (int c = 0; c < ol.cols(); ++c) {
            const std::size_t idx =
                layout == MemLayout::RowMajor
                    ? static_cast<std::size_t>(r) * ld + c
                    : static_cast<std::size_t>(c) * ld + r;
            const arch::RegLocation loc =
                ol.locationOf(arch::ElementCoord{block, r, c});
            ptr[idx] = frag.regs().at(loc.lane, loc.slot);
        }
    }
    KernelRecorder::active().noteFragmentStore(
        static_cast<std::uint64_t>(ol.rows()) * ol.cols() * sizeof(T));
}

/** Store a fragment; multi-block tiles go to consecutive slabs. */
template <FragmentUse Use, int M, int N, int K, typename T, int Blocks,
          arch::GpuArch Target>
void
store_matrix_sync(T *ptr,
                  const Fragment<Use, M, N, K, T, Blocks, Target> &frag,
                  std::size_t ld, MemLayout layout = MemLayout::RowMajor)
{
    const auto &ol = frag.layout();
    const std::size_t tile_elems =
        static_cast<std::size_t>(ol.rows()) * ol.cols();
    for (int blk = 0; blk < ol.blocks(); ++blk)
        store_matrix_block_sync(ptr + blk * tile_elems, frag, ld, blk,
                                layout);
}

/**
 * D <- A*B + C on the matrix unit (all blocks in parallel).
 *
 * Executes functionally through the register layouts and records one
 * MFMA instruction into the active KernelRecorder.
 */
template <int M, int N, int K, typename TCD, typename TAB, int Blocks,
          arch::GpuArch Target>
void
mma_sync(Fragment<FragmentUse::Accumulator, M, N, K, TCD, Blocks,
                  Target> &d,
         const Fragment<FragmentUse::MatrixA, M, N, K, TAB, Blocks,
                        Target> &a,
         const Fragment<FragmentUse::MatrixB, M, N, K, TAB, Blocks,
                        Target> &b,
         const Fragment<FragmentUse::Accumulator, M, N, K, TCD, Blocks,
                        Target> &c)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        Target, detail::dataTypeOf<TCD>(), detail::dataTypeOf<TAB>(),
        arch::MfmaShape{M, N, K, Blocks});
    if (inst == nullptr) {
        mc_fatal("mma_sync: ", arch::gpuArchName(Target),
                 " has no ", M, "x", N, "x", K, " ",
                 fp::NumericTraits<TCD>::name, " <- ",
                 fp::NumericTraits<TAB>::name, " instruction");
    }

    d.regs() = arch::executeMfmaInRegisters<TCD, TAB>(*inst, a.regs(),
                                                      b.regs(), c.regs());
    KernelRecorder::active().noteMfma(inst);
}

} // namespace wmma
} // namespace mc

#endif // MC_WMMA_WMMA_HH
