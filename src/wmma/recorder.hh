/**
 * @file
 * Recording of WMMA operations into a kernel profile.
 *
 * The paper's micro-benchmarks verify — by inspecting the generated
 * assembly — that each rocWMMA mma_sync lowers to exactly one MFMA
 * instruction, then time loops of them. The KernelRecorder is this
 * model's equivalent of that assembly listing: every mma_sync and
 * fragment load/store appends to the active recorder, and the recorded
 * single-iteration body can be replayed N_iter times by N_WF wavefronts
 * as a simulator kernel.
 */

#ifndef MC_WMMA_RECORDER_HH
#define MC_WMMA_RECORDER_HH

#include <cstdint>
#include <map>
#include <string>

#include "arch/mfma_isa.hh"
#include "sim/kernel.hh"

namespace mc {
namespace wmma {

/**
 * Collects the instruction trace of one wavefront's WMMA code.
 */
class KernelRecorder
{
  public:
    /** The thread-local active recorder used by the WMMA entry points. */
    static KernelRecorder &active();

    /** Clear the trace and start a new kernel body. */
    void reset(std::string label = "wmma_kernel");

    /** Record one MFMA instruction issue. */
    void noteMfma(const arch::MfmaInstruction *inst);

    /** Record a fragment load of @p bytes from memory. */
    void noteFragmentLoad(std::uint64_t bytes);

    /** Record a fragment store of @p bytes to memory. */
    void noteFragmentStore(std::uint64_t bytes);

    /** MFMA instructions recorded since reset (the "assembly check"). */
    std::uint64_t mfmaCount() const;

    /** MFMA instructions recorded for one specific mnemonic. */
    std::uint64_t mfmaCount(const std::string &mnemonic) const;

    /** Bytes of fragment traffic recorded since reset. */
    std::uint64_t loadBytes() const { return _loadBytes; }
    std::uint64_t storeBytes() const { return _storeBytes; }

    /**
     * Build a kernel profile that executes the recorded body
     * @p iterations times in each of @p wavefronts wavefronts.
     */
    sim::KernelProfile buildProfile(std::uint64_t wavefronts = 1,
                                    std::uint64_t iterations = 1) const;

  private:
    std::string _label = "wmma_kernel";
    std::map<const arch::MfmaInstruction *, std::uint64_t> _mfma;
    std::uint64_t _loadBytes = 0;
    std::uint64_t _storeBytes = 0;
};

/**
 * Convenience for the micro-benchmarks: a profile whose wavefronts each
 * iterate @p iterations issues of @p inst (the paper's timed loop).
 */
sim::KernelProfile mfmaLoopProfile(const arch::MfmaInstruction &inst,
                                   std::uint64_t iterations,
                                   std::uint64_t wavefronts,
                                   const std::string &label = "mfma_loop");

} // namespace wmma
} // namespace mc

#endif // MC_WMMA_RECORDER_HH
