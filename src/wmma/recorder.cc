#include "recorder.hh"

#include "common/logging.hh"

namespace mc {
namespace wmma {

KernelRecorder &
KernelRecorder::active()
{
    thread_local KernelRecorder recorder;
    return recorder;
}

void
KernelRecorder::reset(std::string label)
{
    _label = std::move(label);
    _mfma.clear();
    _loadBytes = 0;
    _storeBytes = 0;
}

void
KernelRecorder::noteMfma(const arch::MfmaInstruction *inst)
{
    mc_assert(inst != nullptr, "recorded MFMA requires an instruction");
    ++_mfma[inst];
}

void
KernelRecorder::noteFragmentLoad(std::uint64_t bytes)
{
    _loadBytes += bytes;
}

void
KernelRecorder::noteFragmentStore(std::uint64_t bytes)
{
    _storeBytes += bytes;
}

std::uint64_t
KernelRecorder::mfmaCount() const
{
    std::uint64_t total = 0;
    for (const auto &[inst, count] : _mfma)
        total += count;
    return total;
}

std::uint64_t
KernelRecorder::mfmaCount(const std::string &mnemonic) const
{
    std::uint64_t total = 0;
    for (const auto &[inst, count] : _mfma) {
        if (inst->mnemonic == mnemonic)
            total += count;
    }
    return total;
}

sim::KernelProfile
KernelRecorder::buildProfile(std::uint64_t wavefronts,
                             std::uint64_t iterations) const
{
    mc_assert(wavefronts > 0, "profile requires at least one wavefront");
    sim::KernelProfile profile;
    profile.label = _label;
    profile.numWavefronts = wavefronts;
    profile.numWorkgroups = (wavefronts + 3) / 4;
    for (const auto &[inst, count] : _mfma)
        profile.addMfma(inst, count * iterations);
    profile.hbmReadBytes = static_cast<double>(_loadBytes) *
                           static_cast<double>(wavefronts);
    profile.hbmWriteBytes = static_cast<double>(_storeBytes) *
                            static_cast<double>(wavefronts);
    return profile;
}

sim::KernelProfile
mfmaLoopProfile(const arch::MfmaInstruction &inst, std::uint64_t iterations,
                std::uint64_t wavefronts, const std::string &label)
{
    sim::KernelProfile profile;
    profile.label = label;
    profile.numWavefronts = wavefronts;
    profile.numWorkgroups = (wavefronts + 3) / 4;
    profile.addMfma(&inst, iterations);
    return profile;
}

} // namespace wmma
} // namespace mc
