/**
 * @file
 * Blocked Cholesky factorization (potrf) and solve (potrs) for
 * symmetric positive-definite systems — the second rocSOLVER-style
 * factorization, whose trailing updates exercise TRSM and SYRK on the
 * Matrix Cores rather than plain GEMM.
 */

#ifndef MC_SOLVER_CHOLESKY_HH
#define MC_SOLVER_CHOLESKY_HH

#include "blas/level3.hh"
#include "solver/lu.hh"

namespace mc {
namespace solver {

/**
 * Blocked lower-triangular Cholesky: A = L L^T for SPD A.
 *
 * Functional math runs on the host; the panel TRSM and trailing SYRK
 * updates are mirrored onto the simulated device for time and energy
 * accounting, as the LU solver mirrors its GEMM updates.
 */
class CholeskySolver
{
  public:
    /**
     * @param engine GEMM engine whose runtime times the updates.
     * @param block_size panel width of the blocked factorization.
     */
    explicit CholeskySolver(blas::GemmEngine &engine,
                            std::size_t block_size = 128);

    /**
     * Factor @p a in place: on success the lower triangle holds L (the
     * strict upper triangle is left untouched).
     *
     * @return InvalidArgument for non-square input; FailedPrecondition
     *         when a non-positive pivot shows A is not positive
     *         definite.
     */
    Status factor(Matrix<double> &a, SolveStats *stats = nullptr);

    /** Solve A x = b from a factorization produced by factor(). */
    Status solve(const Matrix<double> &l, const std::vector<double> &b,
                 std::vector<double> &x) const;

    /** Factor-and-solve convenience. */
    Status solveSystem(const Matrix<double> &a,
                       const std::vector<double> &b,
                       std::vector<double> &x,
                       SolveStats *stats = nullptr);

    std::size_t blockSize() const { return _blockSize; }

  private:
    blas::GemmEngine &_engine;
    blas::Level3Engine _level3;
    std::size_t _blockSize;
};

} // namespace solver
} // namespace mc

#endif // MC_SOLVER_CHOLESKY_HH
