/**
 * @file
 * A rocSOLVER-style dense solver substrate: blocked LU factorization
 * with partial pivoting, triangular solves, and mixed-precision
 * iterative refinement.
 *
 * As in rocSOLVER, the bulk of the factorization FLOPs are delegated to
 * GEMM — which is how high-level libraries "opportunistically leverage"
 * Matrix Cores (paper Section III). Functional math runs on the host;
 * every trailing-matrix GEMM update is mirrored onto the simulated
 * device so the solver reports realistic simulated time and energy. The
 * iterative-refinement solver reproduces the technique of the paper's
 * reference [3]: factor in reduced precision on Matrix Cores, then
 * recover FP64 accuracy with cheap refinement steps.
 */

#ifndef MC_SOLVER_LU_HH
#define MC_SOLVER_LU_HH

#include <cstddef>
#include <vector>

#include "blas/gemm.hh"
#include "common/matrix.hh"
#include "common/status.hh"
#include "fp/half.hh"

namespace mc {
namespace solver {

/** Accounting of one solver run. */
struct SolveStats
{
    /** Simulated device time spent in GEMM updates, seconds. */
    double gemmSeconds = 0.0;
    /** Simulated device energy of those updates, joules. */
    double gemmEnergyJ = 0.0;
    /** GEMM kernels issued. */
    int gemmCalls = 0;
    /** Refinement iterations executed (refinement solver only). */
    int refinementIters = 0;
    /** Final relative residual ||b - Ax|| / (||A||_inf ||x||_inf). */
    double relativeResidual = 0.0;
};

/**
 * Blocked LU factorization with partial pivoting (getrf) and the
 * companion solve (getrs), in double precision.
 */
class LuSolver
{
  public:
    /**
     * @param engine GEMM engine used to time the trailing updates.
     * @param block_size panel width of the blocked factorization.
     */
    explicit LuSolver(blas::GemmEngine &engine, std::size_t block_size = 128);

    /**
     * Factor @p a in place into L\\U with pivot vector @p pivots
     * (pivots[i] = row swapped with row i at step i).
     *
     * @return InvalidArgument for non-square input; FailedPrecondition
     *         when a zero pivot makes the matrix singular.
     */
    Status factor(Matrix<double> &a, std::vector<int> &pivots,
                  SolveStats *stats = nullptr);

    /** Solve A x = b using a factorization produced by factor(). */
    Status solve(const Matrix<double> &lu, const std::vector<int> &pivots,
                 const std::vector<double> &b, std::vector<double> &x) const;

    /** Factor-and-solve convenience (destroys a copy of @p a). */
    Status solveSystem(const Matrix<double> &a,
                       const std::vector<double> &b,
                       std::vector<double> &x,
                       SolveStats *stats = nullptr);

    std::size_t blockSize() const { return _blockSize; }

  private:
    blas::GemmEngine &_engine;
    std::size_t _blockSize;
};

/**
 * Mixed-precision iterative refinement: factor a half-precision copy of
 * A (timed as HHS GEMM updates on Matrix Cores), then refine the FP64
 * solution with residual corrections.
 */
class IterativeRefinementSolver
{
  public:
    explicit IterativeRefinementSolver(blas::GemmEngine &engine,
                                       std::size_t block_size = 128,
                                       int max_iters = 50,
                                       double tolerance = 1e-12);

    /**
     * Solve A x = b to FP64 accuracy via FP16-factorization plus
     * refinement.
     *
     * @return FailedPrecondition when refinement fails to converge
     *         within the iteration budget (ill-conditioned for FP16).
     */
    Status solve(const Matrix<double> &a, const std::vector<double> &b,
                 std::vector<double> &x, SolveStats *stats = nullptr);

  private:
    blas::GemmEngine &_engine;
    std::size_t _blockSize;
    int _maxIters;
    double _tolerance;
};

/** Infinity norm of a matrix. */
double normInf(const Matrix<double> &a);

/** Infinity norm of a vector. */
double normInf(const std::vector<double> &v);

/** Residual r = b - A x. */
std::vector<double> residual(const Matrix<double> &a,
                             const std::vector<double> &x,
                             const std::vector<double> &b);

} // namespace solver
} // namespace mc

#endif // MC_SOLVER_LU_HH
