#include "lu.hh"

#include <cmath>

#include "common/logging.hh"

namespace mc {
namespace solver {

namespace {

/**
 * Blocked right-looking LU with partial pivoting over any scalar type.
 * @p gemm_hook is invoked for each trailing-matrix update with its
 * (m, n, k) extents so the caller can mirror it onto the device.
 */
template <typename T, typename GemmHook>
Status
factorBlocked(Matrix<T> &a, std::vector<int> &pivots,
              std::size_t block_size, GemmHook &&gemm_hook)
{
    if (a.rows() != a.cols())
        return Status::invalidArgument("LU requires a square matrix");
    const std::size_t n = a.rows();
    pivots.assign(n, 0);

    for (std::size_t j0 = 0; j0 < n; j0 += block_size) {
        const std::size_t jb = std::min(block_size, n - j0);

        // Unblocked factorization of the panel columns.
        for (std::size_t j = j0; j < j0 + jb; ++j) {
            std::size_t piv = j;
            T best = std::abs(a(j, j));
            for (std::size_t i = j + 1; i < n; ++i) {
                const T cand = std::abs(a(i, j));
                if (cand > best) {
                    best = cand;
                    piv = i;
                }
            }
            pivots[j] = static_cast<int>(piv);
            if (piv != j) {
                for (std::size_t c = 0; c < n; ++c)
                    std::swap(a(j, c), a(piv, c));
            }
            if (a(j, j) == T(0))
                return Status::failedPrecondition(
                    "matrix is singular to working precision");

            const T inv_pivot = T(1) / a(j, j);
            for (std::size_t i = j + 1; i < n; ++i) {
                a(i, j) *= inv_pivot;
                const T lij = a(i, j);
                for (std::size_t c = j + 1; c < j0 + jb; ++c)
                    a(i, c) -= lij * a(j, c);
            }
        }

        if (j0 + jb >= n)
            continue;

        // U12 = L11^{-1} A12 (unit lower triangular solve).
        for (std::size_t k = j0; k < j0 + jb; ++k) {
            for (std::size_t i = k + 1; i < j0 + jb; ++i) {
                const T lik = a(i, k);
                for (std::size_t c = j0 + jb; c < n; ++c)
                    a(i, c) -= lik * a(k, c);
            }
        }

        // Trailing update A22 -= L21 * U12: the GEMM that dominates the
        // factorization and lands on Matrix Cores.
        const std::size_t n2 = n - j0 - jb;
        for (std::size_t i = j0 + jb; i < n; ++i) {
            for (std::size_t c = j0 + jb; c < n; ++c) {
                T acc = a(i, c);
                for (std::size_t k = j0; k < j0 + jb; ++k)
                    acc -= a(i, k) * a(k, c);
                a(i, c) = acc;
            }
        }
        gemm_hook(n2, n2, jb);
    }
    return Status::ok();
}

/** Apply the factorization's row swaps to a right-hand side. */
template <typename T>
void
applyPivots(const std::vector<int> &pivots, std::vector<T> &b)
{
    for (std::size_t i = 0; i < pivots.size(); ++i) {
        const auto piv = static_cast<std::size_t>(pivots[i]);
        if (piv != i)
            std::swap(b[i], b[piv]);
    }
}

/** Solve L y = b (unit lower) then U x = y in place. */
template <typename T>
Status
luTriangularSolve(const Matrix<T> &lu, std::vector<T> &b)
{
    const std::size_t n = lu.rows();
    for (std::size_t i = 1; i < n; ++i) {
        T acc = b[i];
        for (std::size_t j = 0; j < i; ++j)
            acc -= lu(i, j) * b[j];
        b[i] = acc;
    }
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        T acc = b[i];
        for (std::size_t j = i + 1; j < n; ++j)
            acc -= lu(i, j) * b[j];
        if (lu(i, i) == T(0))
            return Status::failedPrecondition("zero pivot in solve");
        b[i] = acc / lu(i, i);
    }
    return Status::ok();
}

/** Issue a timed GEMM mirroring a trailing update, accumulating stats. */
void
timeTrailingUpdate(blas::GemmEngine &engine, blas::GemmCombo combo,
                   std::size_t m, std::size_t n, std::size_t k,
                   SolveStats *stats)
{
    blas::GemmConfig cfg;
    cfg.combo = combo;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.alpha = -1.0;
    cfg.beta = 1.0;
    auto result = engine.run(cfg);
    if (!result.isOk())
        mc_fatal("trailing-update GEMM failed: ",
                 result.status().toString());
    if (stats) {
        stats->gemmSeconds += result.value().kernel.seconds;
        stats->gemmEnergyJ += result.value().kernel.avgPowerW *
                              result.value().kernel.seconds;
        ++stats->gemmCalls;
    }
}

} // namespace

double
normInf(const Matrix<double> &a)
{
    double best = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            row += std::fabs(a(i, j));
        best = std::max(best, row);
    }
    return best;
}

double
normInf(const std::vector<double> &v)
{
    double best = 0.0;
    for (double x : v)
        best = std::max(best, std::fabs(x));
    return best;
}

std::vector<double>
residual(const Matrix<double> &a, const std::vector<double> &x,
         const std::vector<double> &b)
{
    mc_assert(a.cols() == x.size() && a.rows() == b.size(),
              "residual shape mismatch");
    std::vector<double> r(b);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            acc += a(i, j) * x[j];
        r[i] -= acc;
    }
    return r;
}

LuSolver::LuSolver(blas::GemmEngine &engine, std::size_t block_size)
    : _engine(engine), _blockSize(block_size)
{
    mc_assert(block_size > 0, "block size must be positive");
}

Status
LuSolver::factor(Matrix<double> &a, std::vector<int> &pivots,
                 SolveStats *stats)
{
    return factorBlocked(a, pivots, _blockSize,
        [&](std::size_t m, std::size_t n, std::size_t k) {
            timeTrailingUpdate(_engine, blas::GemmCombo::Dgemm, m, n, k,
                               stats);
        });
}

Status
LuSolver::solve(const Matrix<double> &lu, const std::vector<int> &pivots,
                const std::vector<double> &b, std::vector<double> &x) const
{
    if (lu.rows() != lu.cols() || lu.rows() != b.size())
        return Status::invalidArgument("solve shape mismatch");
    x = b;
    applyPivots(pivots, x);
    return luTriangularSolve(lu, x);
}

Status
LuSolver::solveSystem(const Matrix<double> &a, const std::vector<double> &b,
                      std::vector<double> &x, SolveStats *stats)
{
    Matrix<double> lu = a;
    std::vector<int> pivots;
    if (Status s = factor(lu, pivots, stats); !s.isOk())
        return s;
    if (Status s = solve(lu, pivots, b, x); !s.isOk())
        return s;
    if (stats) {
        const std::vector<double> r = residual(a, x, b);
        const double denom = normInf(a) * std::max(normInf(x), 1e-300);
        stats->relativeResidual = normInf(r) / denom;
    }
    return Status::ok();
}

IterativeRefinementSolver::IterativeRefinementSolver(
    blas::GemmEngine &engine, std::size_t block_size, int max_iters,
    double tolerance)
    : _engine(engine), _blockSize(block_size), _maxIters(max_iters),
      _tolerance(tolerance)
{
    mc_assert(max_iters > 0, "refinement needs a positive iteration cap");
    mc_assert(tolerance > 0.0, "tolerance must be positive");
}

Status
IterativeRefinementSolver::solve(const Matrix<double> &a,
                                 const std::vector<double> &b,
                                 std::vector<double> &x, SolveStats *stats)
{
    if (a.rows() != a.cols() || a.rows() != b.size())
        return Status::invalidArgument("refinement solve shape mismatch");
    const std::size_t n = a.rows();

    // Reduced-precision working copy: FP16 storage rounding on the way
    // in, FP32 factorization arithmetic — the Matrix Core accumulation
    // precision for f16 operands.
    Matrix<float> a_low(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a_low(i, j) = fp::Half(a(i, j)).toFloat();

    std::vector<int> pivots;
    Status s = factorBlocked(a_low, pivots, _blockSize,
        [&](std::size_t m2, std::size_t n2, std::size_t k2) {
            timeTrailingUpdate(_engine, blas::GemmCombo::Hhs, m2, n2, k2,
                               stats);
        });
    if (!s.isOk())
        return s;

    const double a_norm = normInf(a);

    // Initial solve in reduced precision.
    std::vector<float> work(n);
    for (std::size_t i = 0; i < n; ++i)
        work[i] = static_cast<float>(b[i]);
    applyPivots(pivots, work);
    if (Status ts = luTriangularSolve(a_low, work); !ts.isOk())
        return ts;
    x.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = work[i];

    // Refinement loop: FP64 residual, reduced-precision correction.
    for (int iter = 0; iter < _maxIters; ++iter) {
        const std::vector<double> r = residual(a, x, b);
        const double rel =
            normInf(r) / (a_norm * std::max(normInf(x), 1e-300));
        if (stats) {
            stats->refinementIters = iter;
            stats->relativeResidual = rel;
        }
        if (rel <= _tolerance)
            return Status::ok();

        // The FP64 residual is a matrix-vector product; mirror it as a
        // thin DGEMM so its device cost is accounted.
        timeTrailingUpdate(_engine, blas::GemmCombo::Dgemm, n, 1, n, stats);

        for (std::size_t i = 0; i < n; ++i)
            work[i] = static_cast<float>(r[i]);
        applyPivots(pivots, work);
        if (Status ts = luTriangularSolve(a_low, work); !ts.isOk())
            return ts;
        for (std::size_t i = 0; i < n; ++i)
            x[i] += work[i];
    }
    return Status::failedPrecondition(
        "iterative refinement did not converge (matrix too "
        "ill-conditioned for FP16 factorization)");
}

} // namespace solver
} // namespace mc
