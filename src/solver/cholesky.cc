#include "cholesky.hh"

#include <cmath>

#include "common/logging.hh"

namespace mc {
namespace solver {

namespace {

/** Accumulate one timed device call into the stats. */
void
account(SolveStats *stats, const Result<blas::GemmResult> &result)
{
    if (!result.isOk())
        mc_fatal("device update failed: ", result.status().toString());
    if (stats) {
        stats->gemmSeconds += result.value().kernel.seconds;
        stats->gemmEnergyJ += result.value().kernel.avgPowerW *
                              result.value().kernel.seconds;
        ++stats->gemmCalls;
    }
}

} // namespace

CholeskySolver::CholeskySolver(blas::GemmEngine &engine,
                               std::size_t block_size)
    : _engine(engine), _level3(engine), _blockSize(block_size)
{
    mc_assert(block_size > 0, "block size must be positive");
}

Status
CholeskySolver::factor(Matrix<double> &a, SolveStats *stats)
{
    if (a.rows() != a.cols())
        return Status::invalidArgument(
            "Cholesky requires a square matrix");
    const std::size_t n = a.rows();

    for (std::size_t j0 = 0; j0 < n; j0 += _blockSize) {
        const std::size_t jb = std::min(_blockSize, n - j0);

        // Unblocked Cholesky of the diagonal panel.
        for (std::size_t j = j0; j < j0 + jb; ++j) {
            double diag = a(j, j);
            for (std::size_t kk = j0; kk < j; ++kk)
                diag -= a(j, kk) * a(j, kk);
            if (diag <= 0.0)
                return Status::failedPrecondition(
                    "matrix is not positive definite");
            const double ljj = std::sqrt(diag);
            a(j, j) = ljj;
            for (std::size_t i = j + 1; i < j0 + jb; ++i) {
                double acc = a(i, j);
                for (std::size_t kk = j0; kk < j; ++kk)
                    acc -= a(i, kk) * a(j, kk);
                a(i, j) = acc / ljj;
            }
        }

        if (j0 + jb >= n)
            continue;
        const std::size_t rest = n - j0 - jb;

        // Panel solve: L21 = A21 * inv(L11^T) — a Right-side TRSM.
        for (std::size_t i = j0 + jb; i < n; ++i) {
            for (std::size_t j = j0; j < j0 + jb; ++j) {
                double acc = a(i, j);
                for (std::size_t kk = j0; kk < j; ++kk)
                    acc -= a(i, kk) * a(j, kk);
                a(i, j) = acc / a(j, j);
            }
        }
        blas::TrsmConfig trsm;
        trsm.combo = blas::GemmCombo::Dgemm;
        trsm.side = blas::Side::Right;
        trsm.fill = blas::Fill::Lower;
        trsm.m = rest;
        trsm.n = jb;
        account(stats, _level3.runTrsm(trsm));

        // Trailing update: A22 -= L21 * L21^T — a SYRK.
        for (std::size_t i = j0 + jb; i < n; ++i) {
            for (std::size_t j = j0 + jb; j <= i; ++j) {
                double acc = a(i, j);
                for (std::size_t kk = j0; kk < j0 + jb; ++kk)
                    acc -= a(i, kk) * a(j, kk);
                a(i, j) = acc;
            }
        }
        blas::SyrkConfig syrk;
        syrk.combo = blas::GemmCombo::Dgemm;
        syrk.fill = blas::Fill::Lower;
        syrk.n = rest;
        syrk.k = jb;
        syrk.alpha = -1.0;
        syrk.beta = 1.0;
        account(stats, _level3.runSyrk(syrk));
    }
    return Status::ok();
}

Status
CholeskySolver::solve(const Matrix<double> &l,
                      const std::vector<double> &b,
                      std::vector<double> &x) const
{
    if (l.rows() != l.cols() || l.rows() != b.size())
        return Status::invalidArgument("solve shape mismatch");
    const std::size_t n = l.rows();
    x = b;
    // Forward: L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = x[i];
        for (std::size_t j = 0; j < i; ++j)
            acc -= l(i, j) * x[j];
        if (l(i, i) == 0.0)
            return Status::failedPrecondition("zero pivot in solve");
        x[i] = acc / l(i, i);
    }
    // Backward: L^T x = y.
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double acc = x[i];
        for (std::size_t j = i + 1; j < n; ++j)
            acc -= l(j, i) * x[j];
        x[i] = acc / l(i, i);
    }
    return Status::ok();
}

Status
CholeskySolver::solveSystem(const Matrix<double> &a,
                            const std::vector<double> &b,
                            std::vector<double> &x, SolveStats *stats)
{
    Matrix<double> l = a;
    if (Status s = factor(l, stats); !s.isOk())
        return s;
    if (Status s = solve(l, b, x); !s.isOk())
        return s;
    if (stats) {
        const std::vector<double> r = residual(a, x, b);
        const double denom = normInf(a) * std::max(normInf(x), 1e-300);
        stats->relativeResidual = normInf(r) / denom;
    }
    return Status::ok();
}

} // namespace solver
} // namespace mc
