/**
 * @file
 * Compile-time traits connecting C++ storage types to the numeric
 * behaviour the simulator needs: widening to the accumulation type and
 * rounding back to storage.
 */

#ifndef MC_FP_TRAITS_HH
#define MC_FP_TRAITS_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "fp/bfloat16.hh"
#include "fp/half.hh"

namespace mc {
namespace fp {

/**
 * Numeric traits for a storage type.
 *
 * @tparam T storage type (Half, BFloat16, float, double, int8, int32).
 */
template <typename T>
struct NumericTraits;

template <>
struct NumericTraits<Half>
{
    /// Type used by Matrix Core accumulators for this operand type.
    using AccumType = float;
    static constexpr const char *name = "fp16";
    static constexpr std::size_t bytes = 2;
    static float widen(Half v) { return v.toFloat(); }
    static Half narrow(float v) { return Half(v); }
};

template <>
struct NumericTraits<BFloat16>
{
    using AccumType = float;
    static constexpr const char *name = "bf16";
    static constexpr std::size_t bytes = 2;
    static float widen(BFloat16 v) { return v.toFloat(); }
    static BFloat16 narrow(float v) { return BFloat16(v); }
};

template <>
struct NumericTraits<float>
{
    using AccumType = float;
    static constexpr const char *name = "fp32";
    static constexpr std::size_t bytes = 4;
    static float widen(float v) { return v; }
    static float narrow(float v) { return v; }
};

template <>
struct NumericTraits<double>
{
    using AccumType = double;
    static constexpr const char *name = "fp64";
    static constexpr std::size_t bytes = 8;
    static double widen(double v) { return v; }
    static double narrow(double v) { return v; }
};

template <>
struct NumericTraits<std::int8_t>
{
    using AccumType = std::int32_t;
    static constexpr const char *name = "int8";
    static constexpr std::size_t bytes = 1;
    static std::int32_t widen(std::int8_t v) { return v; }
    static std::int8_t narrow(std::int32_t v)
    {
        // Integer accumulators saturate on writeback in CDNA2.
        if (v > 127) return 127;
        if (v < -128) return -128;
        return static_cast<std::int8_t>(v);
    }
};

template <>
struct NumericTraits<std::int32_t>
{
    using AccumType = std::int32_t;
    static constexpr const char *name = "int32";
    static constexpr std::size_t bytes = 4;
    static std::int32_t widen(std::int32_t v) { return v; }
    static std::int32_t narrow(std::int32_t v) { return v; }
};

/** True when T is one of the 16-bit reduced-precision float types. */
template <typename T>
inline constexpr bool isReducedFloat =
    std::is_same_v<T, Half> || std::is_same_v<T, BFloat16>;

// ---- ULP distance -------------------------------------------------------
//
// orderedBits maps a float bit pattern onto an unsigned scale that is
// monotone in the represented value: sign-magnitude becomes a biased
// offset around 2^(W-1), so adjacent representable values are adjacent
// integers, +0 and -0 coincide, and |orderedBits(a) - orderedBits(b)|
// is the count of representable values between a and b — the ULP
// distance verification reports.

/** Monotone unsigned image of a binary16 bit pattern. */
inline std::uint64_t
orderedBits(Half v)
{
    const std::uint16_t bits = v.bits();
    const std::uint64_t mag = bits & 0x7fffu;
    constexpr std::uint64_t bias = 1ull << 15;
    return (bits & 0x8000u) ? bias - mag : bias + mag;
}

/** Monotone unsigned image of a binary32 bit pattern. */
inline std::uint64_t
orderedBits(float v)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
    const std::uint64_t mag = bits & 0x7fffffffu;
    constexpr std::uint64_t bias = 1ull << 31;
    return (bits & 0x80000000u) ? bias - mag : bias + mag;
}

/** Monotone unsigned image of a binary64 bit pattern. */
inline std::uint64_t
orderedBits(double v)
{
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    const std::uint64_t mag = bits & 0x7fffffffffffffffull;
    constexpr std::uint64_t bias = 1ull << 63;
    return (bits & 0x8000000000000000ull) ? bias - mag : bias + mag;
}

/** Sentinel ulpDistance when either operand is NaN. */
inline constexpr std::uint64_t kUlpNan =
    std::numeric_limits<std::uint64_t>::max();

/** Representable values between @p a and @p b (0 when bit-equal or
 *  both zeros; kUlpNan when either is NaN). */
template <typename T>
std::uint64_t
ulpDistance(T a, T b)
{
    if constexpr (std::is_same_v<T, Half>) {
        if (a.isNan() || b.isNan())
            return kUlpNan;
    } else {
        if (std::isnan(a) || std::isnan(b))
            return kUlpNan;
    }
    const std::uint64_t oa = orderedBits(a);
    const std::uint64_t ob = orderedBits(b);
    return oa > ob ? oa - ob : ob - oa;
}

} // namespace fp
} // namespace mc

#endif // MC_FP_TRAITS_HH
