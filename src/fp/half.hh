/**
 * @file
 * Software IEEE 754 binary16 ("half precision") arithmetic.
 *
 * The host toolchain has no native FP16 type, but the Matrix Core model
 * must execute mixed-precision MFMA operations (FP32 <- FP16) with the
 * exact storage semantics of the hardware: FP16 operands in registers,
 * widened to FP32 inside the Matrix Core accumulator. This class stores
 * the 16-bit pattern and provides correctly rounded (round-to-nearest-
 * even) conversions, including subnormals, infinities, and NaNs.
 */

#ifndef MC_FP_HALF_HH
#define MC_FP_HALF_HH

#include <cstdint>
#include <string>

namespace mc {
namespace fp {

/**
 * IEEE 754 binary16 value stored as its raw 16-bit pattern.
 *
 * Arithmetic widens to float, computes, and rounds back — matching the
 * behaviour of scalar FP16 ALUs, which round each operation to binary16.
 */
class Half
{
  public:
    /** Positive zero. */
    constexpr Half() : _bits(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit Half(float value) : _bits(fromFloatBits(value)) {}

    /** Convert from double via float (double -> float -> half). */
    explicit Half(double value) : Half(static_cast<float>(value)) {}

    /** Reinterpret a raw bit pattern as a Half. */
    static constexpr Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h._bits = bits;
        return h;
    }

    /** The raw 16-bit pattern. */
    constexpr std::uint16_t bits() const { return _bits; }

    /** Widen to float (exact: every binary16 value is a float). */
    float toFloat() const;

    explicit operator float() const { return toFloat(); }
    explicit operator double() const { return toFloat(); }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;
    bool isSubnormal() const;
    bool signBit() const { return (_bits & 0x8000u) != 0; }

    /** Smallest positive normal value (2^-14). */
    static Half minNormal() { return fromBits(0x0400); }
    /** Smallest positive subnormal value (2^-24). */
    static Half minSubnormal() { return fromBits(0x0001); }
    /** Largest finite value (65504). */
    static Half maxFinite() { return fromBits(0x7bff); }
    /** Positive infinity. */
    static Half infinity() { return fromBits(0x7c00); }
    /** A quiet NaN. */
    static Half quietNan() { return fromBits(0x7e00); }
    /** One. */
    static Half one() { return fromBits(0x3c00); }

    /** Hex bit-pattern string, e.g. "0x3c00". */
    std::string toString() const;

    friend Half operator+(Half a, Half b) { return Half(a.toFloat() + b.toFloat()); }
    friend Half operator-(Half a, Half b) { return Half(a.toFloat() - b.toFloat()); }
    friend Half operator*(Half a, Half b) { return Half(a.toFloat() * b.toFloat()); }
    friend Half operator/(Half a, Half b) { return Half(a.toFloat() / b.toFloat()); }
    Half operator-() const { return fromBits(_bits ^ 0x8000u); }

    /** IEEE equality: NaN != NaN, -0 == +0. */
    friend bool operator==(Half a, Half b);
    friend bool operator!=(Half a, Half b) { return !(a == b); }
    friend bool operator<(Half a, Half b) { return a.toFloat() < b.toFloat(); }
    friend bool operator<=(Half a, Half b) { return a.toFloat() <= b.toFloat(); }
    friend bool operator>(Half a, Half b) { return a.toFloat() > b.toFloat(); }
    friend bool operator>=(Half a, Half b) { return a.toFloat() >= b.toFloat(); }

  private:
    /** Round a float to the nearest binary16 bit pattern (RNE). */
    static std::uint16_t fromFloatBits(float value);

    std::uint16_t _bits;
};

} // namespace fp
} // namespace mc

#endif // MC_FP_HALF_HH
