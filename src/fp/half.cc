#include "half.hh"

#include <bit>
#include <cstdio>

namespace mc {
namespace fp {

namespace {

constexpr std::uint32_t f32SignMask = 0x80000000u;
constexpr int f32ExpBias = 127;
constexpr int f16ExpBias = 15;

} // namespace

std::uint16_t
Half::fromFloatBits(float value)
{
    const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
    const std::uint16_t sign = static_cast<std::uint16_t>((f & f32SignMask) >> 16);
    const std::uint32_t abs = f & 0x7fffffffu;

    // NaN and infinity.
    if (abs >= 0x7f800000u) {
        if (abs > 0x7f800000u) {
            // Preserve quietness and a payload bit so NaNs stay NaNs.
            const std::uint16_t payload =
                static_cast<std::uint16_t>((abs >> 13) & 0x03ffu);
            return static_cast<std::uint16_t>(
                sign | 0x7c00u | 0x0200u | payload);
        }
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    const int exp32 = static_cast<int>(abs >> 23);
    const std::uint32_t frac32 = abs & 0x007fffffu;
    // Unbiased exponent; float subnormals (exp32 == 0) are far below the
    // half subnormal range and flush through the tiny path below anyway.
    const int exp_unbiased = exp32 - f32ExpBias;
    const int exp16 = exp_unbiased + f16ExpBias;

    if (exp16 >= 0x1f) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (exp16 <= 0) {
        // Subnormal half (or underflow to zero). The implicit leading one
        // joins the fraction; then shift right by (1 - exp16) extra bits.
        if (exp16 < -10) {
            // Even the largest float fraction rounds to zero here: the
            // value is below half of the smallest subnormal.
            return sign;
        }
        const std::uint32_t mantissa = frac32 | 0x00800000u;
        const int shift = 14 - exp16; // 23 - 10 + (1 - exp16)
        const std::uint32_t kept = mantissa >> shift;
        const std::uint32_t round_bit = (mantissa >> (shift - 1)) & 1u;
        const std::uint32_t sticky =
            (mantissa & ((1u << (shift - 1)) - 1u)) != 0;
        std::uint32_t result = kept;
        if (round_bit && (sticky || (kept & 1u)))
            ++result;
        return static_cast<std::uint16_t>(sign | result);
    }

    // Normal half: keep the top 10 fraction bits, round to nearest even.
    std::uint32_t kept = frac32 >> 13;
    const std::uint32_t round_bit = (frac32 >> 12) & 1u;
    const std::uint32_t sticky = (frac32 & 0x0fffu) != 0;
    std::uint32_t result =
        (static_cast<std::uint32_t>(exp16) << 10) | kept;
    if (round_bit && (sticky || (kept & 1u)))
        ++result; // may carry into the exponent, which is exactly right
    if (result >= 0x7c00u)
        return static_cast<std::uint16_t>(sign | 0x7c00u); // rounded to inf
    return static_cast<std::uint16_t>(sign | result);
}

float
Half::toFloat() const
{
    const std::uint32_t sign = static_cast<std::uint32_t>(_bits & 0x8000u) << 16;
    const std::uint32_t exp16 = (_bits >> 10) & 0x1fu;
    const std::uint32_t frac16 = _bits & 0x03ffu;

    std::uint32_t f;
    if (exp16 == 0x1f) {
        // Inf / NaN.
        f = sign | 0x7f800000u | (frac16 << 13);
    } else if (exp16 == 0) {
        if (frac16 == 0) {
            f = sign; // signed zero
        } else {
            // Subnormal: normalize by shifting the fraction up.
            int exp = -1;
            std::uint32_t frac = frac16;
            do {
                ++exp;
                frac <<= 1;
            } while ((frac & 0x0400u) == 0);
            const std::uint32_t exp32 =
                static_cast<std::uint32_t>(f32ExpBias - f16ExpBias - exp);
            f = sign | (exp32 << 23) | ((frac & 0x03ffu) << 13);
        }
    } else {
        const std::uint32_t exp32 = exp16 + (f32ExpBias - f16ExpBias);
        f = sign | (exp32 << 23) | (frac16 << 13);
    }
    return std::bit_cast<float>(f);
}

bool
Half::isNan() const
{
    return ((_bits & 0x7c00u) == 0x7c00u) && (_bits & 0x03ffu);
}

bool
Half::isInf() const
{
    return (_bits & 0x7fffu) == 0x7c00u;
}

bool
Half::isZero() const
{
    return (_bits & 0x7fffu) == 0;
}

bool
Half::isSubnormal() const
{
    return ((_bits & 0x7c00u) == 0) && (_bits & 0x03ffu);
}

std::string
Half::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", _bits);
    return buf;
}

bool
operator==(Half a, Half b)
{
    if (a.isNan() || b.isNan())
        return false;
    if (a.isZero() && b.isZero())
        return true;
    return a._bits == b._bits;
}

} // namespace fp
} // namespace mc
