#include "bfloat16.hh"

#include <bit>
#include <cstdio>

namespace mc {
namespace fp {

std::uint16_t
BFloat16::fromFloatBits(float value)
{
    const std::uint32_t f = std::bit_cast<std::uint32_t>(value);

    // NaN: truncation could zero the payload and turn it into infinity.
    if ((f & 0x7f800000u) == 0x7f800000u && (f & 0x007fffffu)) {
        return static_cast<std::uint16_t>((f >> 16) | 0x0040u);
    }

    // Round to nearest even on the 16 discarded bits.
    const std::uint32_t kept = f >> 16;
    const std::uint32_t rounding =
        0x7fffu + (kept & 1u);
    return static_cast<std::uint16_t>((f + rounding) >> 16);
}

float
BFloat16::toFloat() const
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(_bits) << 16);
}

bool
BFloat16::isNan() const
{
    return ((_bits & 0x7f80u) == 0x7f80u) && (_bits & 0x007fu);
}

bool
BFloat16::isInf() const
{
    return (_bits & 0x7fffu) == 0x7f80u;
}

std::string
BFloat16::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", _bits);
    return buf;
}

bool
operator==(BFloat16 a, BFloat16 b)
{
    if (a.isNan() || b.isNan())
        return false;
    if (a.isZero() && b.isZero())
        return true;
    return a._bits == b._bits;
}

} // namespace fp
} // namespace mc
