/**
 * @file
 * Software bfloat16 ("brain float") arithmetic.
 *
 * CDNA2 Matrix Cores support BF16 operands for ML workloads; the paper
 * focuses on the IEEE types but the ISA model is complete, so the
 * functional executor needs BF16 as well. bfloat16 is the top 16 bits of
 * an IEEE binary32 value; conversion rounds to nearest even.
 */

#ifndef MC_FP_BFLOAT16_HH
#define MC_FP_BFLOAT16_HH

#include <cstdint>
#include <string>

namespace mc {
namespace fp {

/**
 * bfloat16 value stored as its raw 16-bit pattern (sign, 8-bit exponent,
 * 7-bit fraction).
 */
class BFloat16
{
  public:
    /** Positive zero. */
    constexpr BFloat16() : _bits(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit BFloat16(float value) : _bits(fromFloatBits(value)) {}

    /** Convert from double via float. */
    explicit BFloat16(double value) : BFloat16(static_cast<float>(value)) {}

    /** Reinterpret a raw bit pattern. */
    static constexpr BFloat16
    fromBits(std::uint16_t bits)
    {
        BFloat16 b;
        b._bits = bits;
        return b;
    }

    constexpr std::uint16_t bits() const { return _bits; }

    /** Widen to float (exact). */
    float toFloat() const;

    explicit operator float() const { return toFloat(); }
    explicit operator double() const { return toFloat(); }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const { return (_bits & 0x7fffu) == 0; }
    bool signBit() const { return (_bits & 0x8000u) != 0; }

    static BFloat16 one() { return fromBits(0x3f80); }
    static BFloat16 infinity() { return fromBits(0x7f80); }
    static BFloat16 quietNan() { return fromBits(0x7fc0); }

    /** Hex bit-pattern string, e.g. "0x3f80". */
    std::string toString() const;

    friend BFloat16 operator+(BFloat16 a, BFloat16 b)
    { return BFloat16(a.toFloat() + b.toFloat()); }
    friend BFloat16 operator-(BFloat16 a, BFloat16 b)
    { return BFloat16(a.toFloat() - b.toFloat()); }
    friend BFloat16 operator*(BFloat16 a, BFloat16 b)
    { return BFloat16(a.toFloat() * b.toFloat()); }
    BFloat16 operator-() const { return fromBits(_bits ^ 0x8000u); }

    /** IEEE equality: NaN != NaN, -0 == +0. */
    friend bool operator==(BFloat16 a, BFloat16 b);
    friend bool operator!=(BFloat16 a, BFloat16 b) { return !(a == b); }

  private:
    static std::uint16_t fromFloatBits(float value);

    std::uint16_t _bits;
};

} // namespace fp
} // namespace mc

#endif // MC_FP_BFLOAT16_HH
