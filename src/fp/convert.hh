/**
 * @file
 * Batched reduced-precision <-> binary32 conversions on raw bit
 * patterns.
 *
 * The fast functional-GEMM backend packs whole Half/BFloat16 operand
 * matrices into f32 buffers before the blocked kernels run, and the
 * SIMD tiers (src/blas/simd_*.cc) re-implement these loops with vector
 * integer arithmetic. These scalar functions are the semantic anchor:
 * element i of the output is exactly Half::fromBits(in[i]).toFloat()
 * (resp. Half(in[i]).bits(), and the BFloat16 equivalents), and the
 * exhaustive suite in tests/fp/simd_convert_test.cc pins every SIMD
 * tier to them bit-for-bit.
 */

#ifndef MC_FP_CONVERT_HH
#define MC_FP_CONVERT_HH

#include <cstddef>
#include <cstdint>

namespace mc {
namespace fp {

/** out[i] = Half::fromBits(in[i]).toFloat(). Widening is exact. */
void widenHalfBits(const std::uint16_t *in, float *out, std::size_t n);

/** out[i] = BFloat16::fromBits(in[i]).toFloat(). Widening is exact. */
void widenBf16Bits(const std::uint16_t *in, float *out, std::size_t n);

/** out[i] = Half(in[i]).bits() — round-to-nearest-even, subnormals,
 *  infinities and NaN payloads exactly as the software Half does. */
void narrowToHalfBits(const float *in, std::uint16_t *out, std::size_t n);

/** out[i] = BFloat16(in[i]).bits() — RNE with the NaN-quieting rule. */
void narrowToBf16Bits(const float *in, std::uint16_t *out, std::size_t n);

} // namespace fp
} // namespace mc

#endif // MC_FP_CONVERT_HH
