#include "convert.hh"

#include "fp/bfloat16.hh"
#include "fp/half.hh"

namespace mc {
namespace fp {

void
widenHalfBits(const std::uint16_t *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Half::fromBits(in[i]).toFloat();
}

void
widenBf16Bits(const std::uint16_t *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = BFloat16::fromBits(in[i]).toFloat();
}

void
narrowToHalfBits(const float *in, std::uint16_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Half(in[i]).bits();
}

void
narrowToBf16Bits(const float *in, std::uint16_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = BFloat16(in[i]).bits();
}

} // namespace fp
} // namespace mc
