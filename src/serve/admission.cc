#include "admission.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mc {
namespace serve {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/** The deterministic rejection statuses (no timing, no queue sizes in
 *  the message — degraded responses must replay byte-identically). */
Status
shedStatus()
{
    return Status::resourceExhausted(
        "request shed under overload (earliest deadline first)");
}

Status
tenantStatus(const std::string &tenant)
{
    return Status::resourceExhausted("tenant '" + tenant +
                                     "' is at its admission cap");
}

Status
closedStatus()
{
    return Status::unavailable("daemon is shutting down");
}

} // namespace

AdmissionController::AdmissionController(const AdmissionOptions &options,
                                         Dispatcher dispatcher)
    : _options(options), _dispatcher(std::move(dispatcher))
{
    mc_assert(_options.slots > 0, "admission needs at least one slot");
    mc_assert(static_cast<bool>(_dispatcher),
              "admission needs a dispatcher");
}

std::size_t
AdmissionController::shedVictim(double incoming_deadline_sec) const
{
    // The newcomer carries the largest sequence number, so on a
    // deadline tie a queued request is shed first (oldest arrival).
    std::size_t victim = npos;
    double victim_deadline = incoming_deadline_sec;
    std::uint64_t victim_seq = _nextSeq;
    for (std::size_t i = 0; i < _queue.size(); ++i) {
        const Waiting &w = _queue[i];
        if (w.deadlineSec < victim_deadline ||
            (w.deadlineSec == victim_deadline && w.seq < victim_seq)) {
            victim = i;
            victim_deadline = w.deadlineSec;
            victim_seq = w.seq;
        }
    }
    return victim;
}

AdmissionController::Task
AdmissionController::wrap(const std::string &tenant, Task task)
{
    return [this, tenant, task = std::move(task)]() {
        task();
        onTaskDone(tenant);
    };
}

void
AdmissionController::submit(const std::string &tenant,
                            double deadline_sec, Task task, Reject reject)
{
    Task to_dispatch;
    // Deferred past the lock: rejects write response frames and must
    // not run under the controller mutex.
    std::vector<std::pair<Reject, Status>> rejections;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        ++_stats.submitted;
        if (_closed) {
            rejections.emplace_back(std::move(reject), closedStatus());
        } else if (_options.tenantCap > 0 &&
                   _tenantLoad[tenant] >= _options.tenantCap) {
            ++_stats.tenantRejected;
            rejections.emplace_back(std::move(reject),
                                    tenantStatus(tenant));
        } else if (_running < _options.slots) {
            ++_running;
            ++_tenantLoad[tenant];
            ++_nextSeq;
            ++_stats.ranImmediately;
            to_dispatch = wrap(tenant, std::move(task));
        } else {
            const std::size_t victim = _queue.size() < _options.queueDepth
                                           ? npos
                                           : shedVictim(deadline_sec);
            if (_queue.size() >= _options.queueDepth &&
                victim == npos) {
                // The newcomer has the earliest deadline (or lost the
                // tie): it is the shed victim itself.
                ++_nextSeq;
                ++_stats.shed;
                rejections.emplace_back(std::move(reject), shedStatus());
            } else {
                if (victim != npos) {
                    Waiting shed = std::move(_queue[victim]);
                    _queue.erase(_queue.begin() +
                                 static_cast<std::ptrdiff_t>(victim));
                    --_tenantLoad[shed.tenant];
                    ++_stats.shed;
                    rejections.emplace_back(std::move(shed.reject),
                                            shedStatus());
                }
                Waiting w;
                w.tenant = tenant;
                w.deadlineSec = deadline_sec;
                w.seq = _nextSeq++;
                w.task = std::move(task);
                w.reject = std::move(reject);
                ++_tenantLoad[tenant];
                ++_stats.queued;
                _queue.push_back(std::move(w));
                _stats.peakQueueDepth =
                    std::max(_stats.peakQueueDepth, _queue.size());
            }
        }
    }
    for (auto &[cb, status] : rejections)
        cb(status);
    if (to_dispatch)
        _dispatcher(std::move(to_dispatch));
}

void
AdmissionController::onTaskDone(const std::string &tenant)
{
    Task to_dispatch;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        ++_stats.completed;
        --_tenantLoad[tenant];
        // FIFO promotion: queued requests run in arrival order; the
        // deadline only decides who is *shed*, never who runs first
        // (reordering execution by deadline would starve long-deadline
        // requests under steady load).
        if (!_queue.empty()) {
            Waiting next = std::move(_queue.front());
            _queue.pop_front();
            to_dispatch = wrap(next.tenant, std::move(next.task));
        } else {
            --_running;
        }
    }
    if (to_dispatch)
        _dispatcher(std::move(to_dispatch));
}

void
AdmissionController::close()
{
    std::deque<Waiting> cancelled;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        if (_closed)
            return;
        _closed = true;
        cancelled.swap(_queue);
        for (const Waiting &w : cancelled)
            --_tenantLoad[w.tenant];
        _stats.cancelled += cancelled.size();
    }
    for (Waiting &w : cancelled)
        w.reject(closedStatus());
}

AdmissionStats
AdmissionController::stats() const
{
    std::unique_lock<std::mutex> lock(_mutex);
    return _stats;
}

JsonValue
AdmissionController::statsJson() const
{
    const AdmissionStats s = stats();
    JsonValue doc = JsonValue::object();
    doc.set("submitted", static_cast<std::int64_t>(s.submitted));
    doc.set("ran_immediately",
            static_cast<std::int64_t>(s.ranImmediately));
    doc.set("queued", static_cast<std::int64_t>(s.queued));
    doc.set("shed", static_cast<std::int64_t>(s.shed));
    doc.set("tenant_rejected",
            static_cast<std::int64_t>(s.tenantRejected));
    doc.set("cancelled", static_cast<std::int64_t>(s.cancelled));
    doc.set("completed", static_cast<std::int64_t>(s.completed));
    doc.set("peak_queue_depth",
            static_cast<std::int64_t>(s.peakQueueDepth));
    return doc;
}

} // namespace serve
} // namespace mc
