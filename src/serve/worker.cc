#include "worker.hh"

#include <cerrno>
#include <chrono>
#include <csignal>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "exec/supervisor.hh"

namespace mc {
namespace serve {

namespace {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Kill the worker's whole process group, falling back to the pid. */
void
killGroup(pid_t pid, int signo)
{
    if (::kill(-pid, signo) != 0)
        ::kill(pid, signo);
}

/** Nonblocking drain of @p fd into @p buffer; true on EOF. */
bool
drainPipe(int fd, std::string &buffer)
{
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            return true;
        if (errno == EINTR)
            continue;
        return false; // EAGAIN (or an error treated as "not EOF yet")
    }
}

/** Extract the single result frame from the drained pipe bytes;
 *  nullopt when the frame is missing or torn. */
std::optional<std::string>
extractFrame(const std::string &buffer)
{
    if (buffer.size() < 4)
        return std::nullopt;
    const auto *p = reinterpret_cast<const unsigned char *>(buffer.data());
    const std::uint32_t size = (std::uint32_t(p[0]) << 24) |
                               (std::uint32_t(p[1]) << 16) |
                               (std::uint32_t(p[2]) << 8) |
                               std::uint32_t(p[3]);
    if (size > kMaxFrameBytes || buffer.size() < 4 + std::size_t(size))
        return std::nullopt;
    return buffer.substr(4, size);
}

[[noreturn]] void
workerChild(int result_fd, const ServeRequest &request,
            const EngineOptions &engine)
{
    // Mirror the supervisor's child setup: own group so escalation
    // reaches any descendants, die with the daemon so a SIGKILLed
    // daemon leaves no orphan simulations behind.
    ::setpgid(0, 0);
#if defined(__linux__)
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(exit_code::ExecFailed);
#endif
    auto payload = executePayload(request, engine);
    const std::string frame =
        payload.isOk() ? okResponse(request.id, payload.value())
                       : errorResponse(request.id, payload.status());
    // A failed pipe write (parent already gave up on us) is its own
    // Unavailable on the parent side; nothing useful to do here.
    (void)writeFrame(result_fd, frame);
    ::_exit(exit_code::Ok);
}

} // namespace

ErrorCode
classifyWorkerExit(int wait_status, bool watchdog_fired)
{
    if (WIFSIGNALED(wait_status) && !watchdog_fired &&
        WTERMSIG(wait_status) == SIGKILL) {
        // The suite supervisor reads SIGKILL as the OOM killer
        // (machine-wide ResourceExhausted); for a serving daemon the
        // request-level truth is "my worker was shot out from under
        // me" — the service and every other request are fine, so this
        // one degrades to retriable Unavailable.
        return ErrorCode::Unavailable;
    }
    return exec::classifyWaitStatus(wait_status, watchdog_fired);
}

Result<JsonValue>
runInWorker(const ServeRequest &request, const WorkerOptions &options)
{
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        return Status::resourceExhausted("cannot allocate a worker pipe");

    const pid_t pid = ::fork();
    if (pid == 0) {
        ::close(pipe_fds[0]);
        workerChild(pipe_fds[1], request, options.engine);
    }
    ::close(pipe_fds[1]);
    if (pid < 0) {
        ::close(pipe_fds[0]);
        return Status::resourceExhausted("cannot fork a worker process");
    }
    ::setpgid(pid, pid);
    ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);

    // The supervisor's watchdog loop, plus pipe draining: reading while
    // waiting keeps a worker with a payload larger than the pipe buffer
    // from blocking forever on write (which the watchdog would then
    // misread as a hang).
    std::string buffer;
    int wait_status = 0;
    bool watchdog_fired = false;
    bool term_sent = false;
    bool kill_sent = false;
    double term_sent_at = 0.0;
    const double started = monotonicSeconds();
    for (;;) {
        drainPipe(pipe_fds[0], buffer);
        const pid_t r = ::waitpid(pid, &wait_status, WNOHANG);
        if (r == pid)
            break;
        const double now = monotonicSeconds();
        if (options.deadlineSec > 0.0 &&
            now - started > options.deadlineSec && !term_sent) {
            watchdog_fired = true;
            killGroup(pid, SIGTERM);
            term_sent = true;
            term_sent_at = now;
        } else if (term_sent && !kill_sent &&
                   now - term_sent_at > options.graceSec) {
            killGroup(pid, SIGKILL);
            kill_sent = true;
        }
        struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
        ::nanosleep(&ts, nullptr);
    }
    // Everything the child wrote before exiting is still in the pipe.
    drainPipe(pipe_fds[0], buffer);
    ::close(pipe_fds[0]);

    const ErrorCode code = classifyWorkerExit(wait_status, watchdog_fired);
    const std::optional<std::string> frame = extractFrame(buffer);
    if (code == ErrorCode::Ok && frame) {
        auto response = parseResponse(*frame);
        if (!response.isOk())
            return response.status();
        if (response.value().code == ErrorCode::Ok)
            return response.value().payload;
        return Status(response.value().code, response.value().error);
    }
    switch (code) {
      case ErrorCode::Ok:
        // Exit 0 but the result frame is missing or torn: the worker
        // lost its result, which no retry of the same daemon state is
        // guaranteed to fix — a bug, not a degradation.
        return Status::internal("worker exited without a result frame");
      case ErrorCode::DeadlineExceeded:
        return Status::deadlineExceeded(
            "worker overran its wall-clock deadline");
      case ErrorCode::Unavailable:
        return Status::unavailable("worker was terminated");
      case ErrorCode::Internal:
        return Status::internal("worker crashed");
      default:
        return Status(code, "worker failed");
    }
}

} // namespace serve
} // namespace mc
