/**
 * @file
 * Supervised worker processes for the mc_serve daemon.
 *
 * A request that can take a process down — chaos modes by design,
 * fault-injected requests by assumption — must not take the *daemon*
 * down. runInWorker executes the request's payload in a forked child
 * under the supervisor pattern of src/exec/supervisor.cc (own process
 * group, PDEATHSIG, 10 ms watchdog poll, SIGTERM -> SIGKILL
 * escalation) and maps the child's fate into the ErrorCode taxonomy:
 * the daemon's degradation ladder (docs/SERVING.md) is exactly this
 * classification.
 *
 * The child streams its result back over a pipe using the same
 * length-prefixed frame as the wire protocol, enveloped by
 * okResponse/errorResponse — one framing for sockets and pipes. The
 * parent drains the pipe *inside* the watchdog loop, so a worker
 * writing a large payload can never deadlock against a parent that
 * only reads after reaping.
 */

#ifndef MC_SERVE_WORKER_HH
#define MC_SERVE_WORKER_HH

#include "serve/engine.hh"
#include "serve/protocol.hh"

namespace mc {
namespace serve {

/** Supervision knobs of one worker run. */
struct WorkerOptions
{
    /** Wall-clock watchdog: a worker running longer is SIGTERMed (then
     *  SIGKILLed after graceSec) and the request degrades to
     *  DeadlineExceeded. This is real time, unlike the request's
     *  simulated-time deadlineSec, because a hung worker burns no
     *  simulated time at all. */
    double deadlineSec = 60.0;
    /** Grace between SIGTERM and SIGKILL. */
    double graceSec = 2.0;
    /** Execution environment handed to the child's executePayload. */
    EngineOptions engine;
};

/**
 * Execute @p request's payload in a supervised child process.
 *
 * The degradation ladder, in classification order:
 *
 *  - child exits 0 with a complete result frame: the frame's verdict
 *    (Ok payload, or the classified error executePayload produced);
 *  - watchdog fired (hung or overlong worker): DeadlineExceeded;
 *  - killed by SIGKILL: Unavailable (something outside the request
 *    force-killed the worker; the daemon and every other request are
 *    unaffected, and a retry may well succeed);
 *  - SIGTERM / SIGINT / SIGHUP: Unavailable (interrupted);
 *  - any other signal (SIGSEGV, SIGABRT, ...): Internal (crashed);
 *  - nonzero exit: the exit-code contract of docs/RESILIENCE.md
 *    (errorCodeForExitStatus);
 *  - exit 0 with a missing or torn frame: Internal.
 *
 * Every error message is deterministic — no pids, durations, or
 * errno text — so degraded responses replay byte-identically.
 */
Result<JsonValue> runInWorker(const ServeRequest &request,
                              const WorkerOptions &options);

/**
 * The ladder's signal/exit classification alone (exposed for tests):
 * the serve-specific remapping over exec::classifyWaitStatus — SIGKILL
 * means "my worker was shot, retriable" here, not the suite
 * supervisor's machine-wide OOM reading.
 */
ErrorCode classifyWorkerExit(int wait_status, bool watchdog_fired);

} // namespace serve
} // namespace mc

#endif // MC_SERVE_WORKER_HH
