/**
 * @file
 * Deterministic admission control for the mc_serve daemon.
 *
 * The controller owns the daemon's overload policy and nothing else —
 * no threads, no sockets. The server calls submit() from a connection
 * reader in frame-arrival order, and the controller decides
 * synchronously, under one lock, whether the request
 *
 *  - runs now (a slot is free): the wrapped task is handed to the
 *    dispatcher callback;
 *  - waits (queue has room): FIFO, released one per completion;
 *  - is rejected (ResourceExhausted): the tenant is at its cap, or the
 *    queue is full — then the *earliest-deadline* request among the
 *    queued ones and the newcomer is shed (docs/SERVING.md "Admission
 *    and load shedding"). Least slack goes first: under overload that
 *    is the request most likely to blow its budget anyway, and the
 *    policy depends only on (deadline, arrival order), never on timing
 *    — so a saturating burst sheds the same set no matter how threads
 *    interleave.
 *
 * Decisions are made at submit()/complete() edges only; wall-clock
 * time is deliberately not an input, which keeps the shed set
 * reproducible in tests.
 */

#ifndef MC_SERVE_ADMISSION_HH
#define MC_SERVE_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/json.hh"
#include "common/status.hh"

namespace mc {
namespace serve {

/** Capacity knobs of the admission controller. */
struct AdmissionOptions
{
    /** Requests executing concurrently (the daemon's slot count). */
    std::size_t slots = 1;
    /** Requests waiting beyond the running ones before shedding. */
    std::size_t queueDepth = 8;
    /** Per-tenant cap on running + queued requests; 0 = no cap. */
    std::size_t tenantCap = 0;
};

/** Counters of admission outcomes (the stats request reports these). */
struct AdmissionStats
{
    std::uint64_t submitted = 0;
    std::uint64_t ranImmediately = 0;
    std::uint64_t queued = 0;
    std::uint64_t shed = 0;           ///< ResourceExhausted (overload)
    std::uint64_t tenantRejected = 0; ///< ResourceExhausted (tenant cap)
    std::uint64_t cancelled = 0;      ///< Unavailable (shutdown drain)
    std::uint64_t completed = 0;
    std::size_t peakQueueDepth = 0;
};

class AdmissionController
{
  public:
    /** Executes one admitted request end to end (including writing its
     *  response); the controller releases the slot when it returns. */
    using Task = std::function<void()>;
    /** Rejects one request with a classified error. */
    using Reject = std::function<void(const Status &)>;
    /** Receives admitted tasks (the server backs this with a thread
     *  pool of exactly `slots` threads, so a dispatched task never
     *  waits behind pool queueing — admission owns all queueing). */
    using Dispatcher = std::function<void(Task)>;

    AdmissionController(const AdmissionOptions &options,
                        Dispatcher dispatcher);

    /**
     * Admit, queue, or reject one request. Decisions happen in call
     * order; callers serialize per connection (frame order) and the
     * lock serializes across connections. @p reject may be invoked
     * synchronously (tenant cap, shedding, closed) or later (a queued
     * request shed by a newer arrival or cancelled by close()).
     */
    void submit(const std::string &tenant, double deadline_sec,
                Task task, Reject reject);

    /** Stop admitting (submit => Unavailable) and cancel every queued
     *  request with Unavailable. Running requests finish normally. */
    void close();

    AdmissionStats stats() const;

    /** The stats payload of the "stats" request. */
    JsonValue statsJson() const;

  private:
    struct Waiting
    {
        std::string tenant;
        double deadlineSec = 0.0;
        std::uint64_t seq = 0;
        Task task;
        Reject reject;
    };

    /** Index of the shedding victim in _queue, or npos to shed the
     *  newcomer. Earliest deadline loses; ties break on arrival order
     *  (oldest first), so the choice is a pure function of the queue. */
    std::size_t shedVictim(double incoming_deadline_sec) const;

    /** Slot-release path: run on the dispatcher thread after an
     *  admitted task returns; promotes the queue's head. */
    void onTaskDone(const std::string &tenant);

    /** Wrap @p task so its return releases the slot. */
    Task wrap(const std::string &tenant, Task task);

    AdmissionOptions _options;
    Dispatcher _dispatcher;

    mutable std::mutex _mutex;
    bool _closed = false;
    std::uint64_t _nextSeq = 0;
    std::size_t _running = 0;
    std::deque<Waiting> _queue;
    std::unordered_map<std::string, std::size_t> _tenantLoad;
    AdmissionStats _stats;
};

} // namespace serve
} // namespace mc

#endif // MC_SERVE_ADMISSION_HH
