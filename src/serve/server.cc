#include "server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "blas/pack_cache.hh"
#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "serve/engine.hh"

namespace mc {
namespace serve {

namespace {

/** Best-effort id of a frame that failed validation, so even error
 *  responses correlate when the envelope itself was parseable. */
std::string
bestEffortId(const std::string &frame)
{
    auto parsed = JsonValue::parse(frame);
    if (!parsed.isOk() || !parsed.value().isObject())
        return std::string();
    const JsonValue *id = parsed.value().find("id");
    if (!id || id->type() != JsonValue::Type::String)
        return std::string();
    return id->asString();
}

} // namespace

Result<Isolation>
parseIsolation(const std::string &name)
{
    if (name == "none")
        return Isolation::None;
    if (name == "faulted")
        return Isolation::Faulted;
    if (name == "all")
        return Isolation::All;
    return Status::invalidArgument("unknown isolation mode '" + name +
                                   "' (none|faulted|all)");
}

/** One accepted client connection. The fd closes when the last
 *  reference (reader thread or pending flight waiter) drops. */
struct Server::Connection
{
    explicit Connection(int fd_) : fd(fd_) {}
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    /** Write one response frame; frames never interleave because every
     *  writer (reader-thread inline answers, pool-thread flight
     *  responses) goes through this lock. Write failures are the
     *  client's loss alone — the daemon drops the response and keeps
     *  serving. */
    void
    send(const std::string &frame)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        (void)writeFrame(fd, frame);
    }

    int fd;
    std::mutex writeMutex;
};

/** One in-flight execution, shared by every coalesced respondent. */
struct Server::Flight
{
    ServeRequest request;
    std::vector<std::pair<std::shared_ptr<Connection>, std::string>>
        waiters;
};

Server::Server(ServerOptions options)
    : _options(std::move(options)),
      _planCache(std::make_shared<blas::PlanCache>())
{
    _pool = std::make_unique<exec::ThreadPool>(
        static_cast<int>(_options.admission.slots));
    _admission = std::make_unique<AdmissionController>(
        _options.admission, [this](AdmissionController::Task task) {
            _pool->submit(std::move(task));
        });
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    mc_assert(_listenFd < 0, "server already started");

    if (!_options.socketPath.empty()) {
        sockaddr_un addr{};
        if (_options.socketPath.size() >= sizeof(addr.sun_path)) {
            return Status::invalidArgument("socket path '" +
                                           _options.socketPath +
                                           "' is too long");
        }
        _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_listenFd < 0)
            return Status::unavailable("cannot create a Unix socket");
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, _options.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(_options.socketPath.c_str()); // stale socket from a crash
        if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(_listenFd);
            _listenFd = -1;
            return Status::unavailable("cannot bind '" +
                                       _options.socketPath + "'");
        }
    } else {
        _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_listenFd < 0)
            return Status::unavailable("cannot create a TCP socket");
        const int one = 1;
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(_options.tcpPort));
        if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(_listenFd);
            _listenFd = -1;
            return Status::unavailable(
                "cannot bind 127.0.0.1:" +
                std::to_string(_options.tcpPort));
        }
        sockaddr_in bound{};
        socklen_t bound_len = sizeof(bound);
        ::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len);
        _boundPort = ntohs(bound.sin_port);
    }
    if (::listen(_listenFd, 64) != 0) {
        ::close(_listenFd);
        _listenFd = -1;
        return Status::unavailable("cannot listen on the serve socket");
    }

    _acceptor = std::thread([this]() { acceptLoop(); });

    if (!_options.readyFile.empty()) {
        const std::string line =
            (_options.socketPath.empty()
                 ? std::to_string(_boundPort)
                 : _options.socketPath) +
            "\n";
        Status wrote = writeFileAtomic(_options.readyFile, line);
        if (!wrote.isOk())
            return wrote;
    }
    return Status::ok();
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed (stop()) or fatally broken
        }
        if (_stopped.load()) {
            ::close(fd);
            return;
        }
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(_connMutex);
        _connections.push_back(conn);
        _readers.emplace_back(
            [this, conn]() { connectionLoop(conn); });
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> conn)
{
    for (;;) {
        auto frame = readFrame(conn->fd);
        if (!frame.isOk()) {
            // Torn stream or oversized frame: answer if the transport
            // still works, then drop the connection — one misbehaving
            // client never affects another.
            conn->send(errorResponse("", frame.status()));
            break;
        }
        if (!frame.value().has_value())
            break; // clean EOF
        handleFrame(conn, *frame.value());
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(_connMutex);
    for (auto it = _connections.begin(); it != _connections.end(); ++it) {
        if (it->get() == conn.get()) {
            _connections.erase(it);
            break;
        }
    }
}

void
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const std::string &frame)
{
    auto parsed = parseRequest(frame);
    if (!parsed.isOk()) {
        conn->send(errorResponse(bestEffortId(frame), parsed.status()));
        return;
    }
    const ServeRequest &request = parsed.value();

    switch (request.kind) {
      case RequestKind::Ping: {
        JsonValue pong = JsonValue::object();
        pong.set("pong", true);
        conn->send(okResponse(request.id, pong));
        return;
      }
      case RequestKind::Stats:
        conn->send(okResponse(request.id, statsPayload()));
        return;
      case RequestKind::Shutdown: {
        // Flag first: a client that has read this reply must already
        // observe shutdownRequested().
        _shutdown.store(true);
        JsonValue stopping = JsonValue::object();
        stopping.set("stopping", true);
        conn->send(okResponse(request.id, stopping));
        return;
      }
      case RequestKind::Gemm:
      case RequestKind::Sweep:
        break;
    }

    if (request.chaos != ChaosMode::None &&
        (!_options.allowChaos ||
         _options.isolation == Isolation::None)) {
        conn->send(errorResponse(
            request.id,
            Status::failedPrecondition(
                "chaos requests need a daemon started with "
                "--allow-chaos and worker isolation")));
        return;
    }

    // Single-flight coalescing, decided before admission: a request
    // whose execution is already in flight (or queued) rides it and
    // costs no admission slot. The payload depends only on the key, so
    // the joiner's response bytes are exactly a lone run's.
    const std::string key = canonicalKey(request);
    {
        std::lock_guard<std::mutex> lock(_flightMutex);
        auto it = _flights.find(key);
        if (it != _flights.end()) {
            it->second.waiters.emplace_back(conn, request.id);
            _coalesced.fetch_add(1);
            return;
        }
        Flight flight;
        flight.request = request;
        flight.waiters.emplace_back(conn, request.id);
        _flights.emplace(key, std::move(flight));
    }

    _admission->submit(
        request.tenant, request.deadlineSec,
        [this, key, request]() { executeFlight(key, request); },
        [this, key](const Status &status) { failFlight(key, status); });
}

void
Server::executeFlight(const std::string &key, const ServeRequest &request)
{
    const bool isolated =
        _options.isolation == Isolation::All ||
        (_options.isolation == Isolation::Faulted &&
         (request.faults.any() || request.chaos != ChaosMode::None));

    Result<JsonValue> outcome = JsonValue();
    if (isolated) {
        WorkerOptions wopts;
        wopts.deadlineSec = _options.workerDeadlineSec;
        wopts.graceSec = _options.workerGraceSec;
        wopts.engine.planCache = _planCache;
        wopts.engine.allowChaos = _options.allowChaos;
        wopts.engine.verifyGemms = _options.verifyGemms;
        wopts.engine.verifyMaxN = _options.verifyMaxN;
        outcome = runInWorker(request, wopts);
        _workerRuns.fetch_add(1);
    } else {
        EngineOptions eopts;
        eopts.planCache = _planCache;
        // In-process chaos would kill the daemon; the policy check in
        // handleFrame already refused it, this keeps the backstop.
        eopts.allowChaos = false;
        eopts.verifyGemms = _options.verifyGemms;
        eopts.verifyMaxN = _options.verifyMaxN;
        outcome = executePayload(request, eopts);
        _inProcessRuns.fetch_add(1);
    }
    respondFlight(key, outcome);
}

void
Server::failFlight(const std::string &key, const Status &status)
{
    respondFlight(key, Result<JsonValue>(status));
}

void
Server::respondFlight(const std::string &key,
                      const Result<JsonValue> &outcome)
{
    std::vector<std::pair<std::shared_ptr<Connection>, std::string>>
        waiters;
    {
        std::lock_guard<std::mutex> lock(_flightMutex);
        auto it = _flights.find(key);
        mc_assert(it != _flights.end(), "flight resolved twice: ", key);
        waiters = std::move(it->second.waiters);
        _flights.erase(it);
    }
    for (const auto &[conn, id] : waiters) {
        conn->send(outcome.isOk()
                       ? okResponse(id, outcome.value())
                       : errorResponse(id, outcome.status()));
    }
}

JsonValue
Server::statsPayload() const
{
    JsonValue doc = JsonValue::object();
    doc.set("admission", _admission->statsJson());
    JsonValue plans = JsonValue::object();
    plans.set("hits", static_cast<std::int64_t>(_planCache->hits()));
    plans.set("misses", static_cast<std::int64_t>(_planCache->misses()));
    plans.set("evictions",
              static_cast<std::int64_t>(_planCache->evictions()));
    plans.set("size", static_cast<std::int64_t>(_planCache->size()));
    doc.set("plan_cache", plans);
    // The packed-operand cache is process-wide (blas::PackCache), so
    // these counters cover every in-daemon run; isolated workers fork
    // with a fresh (cold) cache and report nothing back here.
    const blas::PackCacheStats packs = blas::PackCache::globalStats();
    JsonValue pack = JsonValue::object();
    pack.set("hits", static_cast<std::int64_t>(packs.hits));
    pack.set("misses", static_cast<std::int64_t>(packs.misses));
    pack.set("evictions", static_cast<std::int64_t>(packs.evictions));
    pack.set("bytes", static_cast<std::int64_t>(packs.residentBytes));
    doc.set("pack_cache", pack);
    JsonValue runs = JsonValue::object();
    runs.set("in_process",
             static_cast<std::int64_t>(_inProcessRuns.load()));
    runs.set("worker", static_cast<std::int64_t>(_workerRuns.load()));
    runs.set("coalesced", static_cast<std::int64_t>(_coalesced.load()));
    doc.set("runs", runs);
    return doc;
}

void
Server::stop()
{
    if (_stopped.exchange(true))
        return;
    _shutdown.store(true);

    // 1. Stop accepting: closing the listener fails the blocking
    //    accept() and ends the acceptor thread.
    if (_listenFd >= 0) {
        ::shutdown(_listenFd, SHUT_RDWR);
        ::close(_listenFd);
    }
    if (_acceptor.joinable())
        _acceptor.join();

    // 2. Cancel every queued request (Unavailable); running ones
    //    finish and answer normally.
    if (_admission)
        _admission->close();

    // 3. Drain the execution pool: its destructor runs pending tasks
    //    to completion before the workers exit.
    _pool.reset();

    // 4. Unblock and join the connection readers.
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        for (const auto &conn : _connections)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        readers.swap(_readers);
    }
    for (std::thread &reader : readers)
        if (reader.joinable())
            reader.join();

    if (!_options.socketPath.empty())
        ::unlink(_options.socketPath.c_str());
    _listenFd = -1;
}

} // namespace serve
} // namespace mc
