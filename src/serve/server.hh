/**
 * @file
 * The mc_serve daemon: sockets, request routing, coalescing, and the
 * degradation ladder's top layer.
 *
 * One acceptor thread takes connections on a Unix or loopback-TCP
 * listener; each connection gets a reader thread that processes frames
 * *in arrival order* — parsing, chaos policy, single-flight coalescing,
 * and the admission decision all happen synchronously on the reader, so
 * the daemon's admission behavior for a pipelined burst is a pure
 * function of the frame sequence (the chaos gate's determinism lever).
 * Admitted requests execute on a pool of exactly `slots` threads,
 * in-process or in a supervised worker (src/serve/worker.hh) per the
 * isolation policy; responses go out under a per-connection write lock,
 * tagged with the request's id so clients may pipeline.
 *
 * Coalescing: concurrent requests with equal canonicalKey() share one
 * execution (single-flight) — each respondent still gets its own
 * envelope with its own id, and because the payload is a pure function
 * of the key (src/serve/engine.hh) a coalesced response is byte-for-
 * byte the response a lone request would have received. Requests with
 * batch > 1 route onto the strided-batched GEMM path inside one
 * simulation (GemmConfig::batchCount), the ext_batched_gemm pattern.
 */

#ifndef MC_SERVE_SERVER_HH
#define MC_SERVE_SERVER_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blas/plan_cache.hh"
#include "exec/thread_pool.hh"
#include "serve/admission.hh"
#include "serve/protocol.hh"
#include "serve/worker.hh"

namespace mc {
namespace serve {

/** Which requests run in a supervised worker process. */
enum class Isolation
{
    None,    ///< everything in-process (fastest; a crash kills the daemon)
    Faulted, ///< fault-injected and chaos requests forked (the default)
    All,     ///< every gemm/sweep request forked
};

/** Parse "none" / "faulted" / "all". */
Result<Isolation> parseIsolation(const std::string &name);

/** Daemon configuration (tools/mc_serve.cc flags map 1:1 onto this). */
struct ServerOptions
{
    /** Unix socket path; empty selects TCP on 127.0.0.1:tcpPort. */
    std::string socketPath;
    /** TCP port (0 = let the kernel pick; see Server::port). */
    int tcpPort = 0;

    AdmissionOptions admission;
    Isolation isolation = Isolation::Faulted;
    /** Honor chaos requests (test daemons only). */
    bool allowChaos = false;

    /** Wall-clock watchdog for worker processes. */
    double workerDeadlineSec = 60.0;
    double workerGraceSec = 2.0;

    /** Host-verify every gemm point after measuring it (mc_serve
     *  --verify; EngineOptions::verifyGemms). Deterministic — the
     *  check's seed derives from the point key — so responses stay
     *  byte-identical across replays and workers. */
    bool verifyGemms = false;
    std::size_t verifyMaxN = 1024;

    /** Written (atomically) once the listener is live, with one line
     *  "<socket path or port>" — test orchestration polls this instead
     *  of racing the bind. Empty = none. */
    std::string readyFile;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, start the acceptor; InvalidArgument /
     *  Unavailable on socket failures. */
    Status start();

    /** The bound TCP port (TCP listeners only; 0 for Unix sockets). */
    int port() const { return _boundPort; }

    /** True once a shutdown request (wire or stop()) was seen. */
    bool shutdownRequested() const { return _shutdown.load(); }

    /** Graceful shutdown: stop accepting, cancel queued requests
     *  (Unavailable), finish running ones, close connections. Safe to
     *  call more than once; start() cannot be called again after. */
    void stop();

    /** The shared plan memo (stats reporting, capacity setup, tests). */
    const blas::PlanCache &planCache() const { return *_planCache; }
    blas::PlanCache &planCache() { return *_planCache; }

    AdmissionStats admissionStats() const { return _admission->stats(); }

  private:
    struct Connection;
    struct Flight;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::string &frame);
    void executeFlight(const std::string &key, const ServeRequest &request);
    void failFlight(const std::string &key, const Status &status);
    void respondFlight(const std::string &key,
                       const Result<JsonValue> &outcome);
    JsonValue statsPayload() const;

    ServerOptions _options;
    int _listenFd = -1;
    int _boundPort = 0;
    std::atomic<bool> _shutdown{false};
    std::atomic<bool> _stopped{false};

    std::shared_ptr<blas::PlanCache> _planCache;
    std::unique_ptr<exec::ThreadPool> _pool;
    std::unique_ptr<AdmissionController> _admission;

    std::thread _acceptor;
    std::mutex _connMutex;
    std::vector<std::shared_ptr<Connection>> _connections;
    std::vector<std::thread> _readers;

    std::mutex _flightMutex;
    std::map<std::string, Flight> _flights;

    std::atomic<std::uint64_t> _workerRuns{0};
    std::atomic<std::uint64_t> _inProcessRuns{0};
    std::atomic<std::uint64_t> _coalesced{0};
};

} // namespace serve
} // namespace mc

#endif // MC_SERVE_SERVER_HH
