/**
 * @file
 * Deterministic execution of one serve request.
 *
 * executePayload is the serving path's analogue of one sweep point in
 * bench/fig6_gemm_fp.cc: the request owns a fresh simulated device, a
 * fault injector seeded from the request's canonical key, and per-
 * repetition noise seeds derived from (service, key, repetition) — so
 * the payload depends only on the request, never on load, queue
 * position, worker placement, or which other requests are in flight.
 * That function *is* the daemon's byte-identical-response contract
 * (docs/SERVING.md "Determinism"); everything above it (admission,
 * coalescing, worker isolation) merely decides where and whether it
 * runs.
 */

#ifndef MC_SERVE_ENGINE_HH
#define MC_SERVE_ENGINE_HH

#include <memory>

#include "blas/plan_cache.hh"
#include "serve/protocol.hh"

namespace mc {
namespace serve {

/** Seed-derivation service name: the "bench name" of deriveSeed. */
inline constexpr const char *kServeSeedName = "mc_serve";

/** Execution environment shared across requests. */
struct EngineOptions
{
    /** Plan memo shared by every request's GemmEngine (may be null:
     *  each request then builds plans from scratch). */
    std::shared_ptr<blas::PlanCache> planCache;

    /** Honor the request's ChaosMode (worker processes only — chaos in
     *  the daemon process would defeat the isolation it tests). */
    bool allowChaos = false;

    /**
     * Host-verify every gemm point numerically after measuring it
     * (mc_serve --verify): the randomized functional check runs with a
     * seed derived from the point key, so responses stay byte-identical
     * across replays, and its staged operands flow through the
     * process-wide pack cache — replayed requests re-verify from warm
     * panels. Points larger than verifyMaxN skip the O(n^3) check.
     */
    bool verifyGemms = false;
    std::size_t verifyMaxN = 1024;
};

/**
 * Execute the gemm/sweep payload of @p request and return the response
 * payload document.
 *
 * Degradations map into the taxonomy exactly like a sweep point's:
 * simulated-memory exhaustion returns an Ok payload with aborted = true
 * per point (the paper's sweep-terminating condition), exhausted
 * transient-fault retries surface the last error, and overrunning the
 * request's simulated-time deadline is DeadlineExceeded. Chaos modes
 * fire before measurement (kill9/segv/hang/exit3 of the calling
 * process); with allowChaos = false they return FailedPrecondition.
 */
Result<JsonValue> executePayload(const ServeRequest &request,
                                 const EngineOptions &options);

} // namespace serve
} // namespace mc

#endif // MC_SERVE_ENGINE_HH
