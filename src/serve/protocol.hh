/**
 * @file
 * Wire protocol and request model of the mc_serve daemon.
 *
 * The daemon speaks length-prefixed JSON over a byte stream (Unix or
 * TCP socket): each message is a 4-byte big-endian payload length
 * followed by that many bytes of a single JSON document. The same
 * framing carries a worker process's result back over its pipe, so
 * one reader/writer pair covers every transport in the serving path.
 *
 * Robustness is the design driver (docs/SERVING.md):
 *
 *  - every malformed input maps to a *classified* error — a frame that
 *    overruns kMaxFrameBytes, truncated length prefixes, JSON that does
 *    not parse, and requests that parse but violate the schema all
 *    produce Status values in the ErrorCode taxonomy instead of
 *    tearing down the daemon;
 *  - responses are a pure function of the request: parseRequest
 *    canonicalizes every field (defaults applied once, here), and
 *    canonicalKey() captures exactly the fields that influence the
 *    simulated result, so the server can coalesce identical in-flight
 *    requests and still honor the byte-identical-response contract.
 */

#ifndef MC_SERVE_PROTOCOL_HH
#define MC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "blas/gemm_types.hh"
#include "common/json.hh"
#include "common/status.hh"
#include "fault/injector.hh"

namespace mc {
namespace serve {

/** Hard ceiling on one frame's payload, bytes (requests and responses
 *  are small JSON documents; anything larger is a protocol error). */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

// ---- Framing --------------------------------------------------------------

/**
 * Write one frame (4-byte big-endian length + @p payload) to @p fd,
 * retrying short writes. EPIPE/ECONNRESET — the peer closed early —
 * return Unavailable (SIGPIPE must be ignored process-wide; see
 * mc::ignoreSigpipe), other write failures return Internal, and an
 * oversized payload is InvalidArgument.
 */
Status writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd.
 *
 * Returns the payload; nullopt on a clean end-of-stream (EOF exactly
 * at a frame boundary — how a client ends its session). EOF inside a
 * frame, a length above kMaxFrameBytes, or a read error are protocol
 * violations returned as error Status (Unavailable for the torn
 * stream, InvalidArgument for the oversized length).
 */
Result<std::optional<std::string>> readFrame(int fd);

// ---- The request model ----------------------------------------------------

/** What a request asks the daemon to do. */
enum class RequestKind
{
    Gemm,     ///< one (possibly strided-batched) GEMM measurement
    Sweep,    ///< a small N-sweep of GEMM measurements
    Ping,     ///< liveness probe; answered inline, never queued
    Stats,    ///< server counters (diagnostic; not deterministic)
    Shutdown, ///< drain and stop the daemon
};

/** Name of @p kind as it appears on the wire. */
const char *requestKindName(RequestKind kind);

/**
 * Test-only failure modes a request can demand of its worker process.
 * The daemon refuses them (FailedPrecondition) unless started with
 * --allow-chaos *and* worker isolation covers the request — a chaos
 * request executed in-process would take the daemon down, which is
 * exactly what the isolation exists to prevent.
 */
enum class ChaosMode
{
    None,
    Kill9, ///< worker raises SIGKILL mid-request
    Segv,  ///< worker raises SIGSEGV mid-request
    Hang,  ///< worker blocks forever (wall-clock watchdog test)
    Exit3, ///< worker exits with exit_code::BudgetExhausted
};

/** Name of @p mode as it appears on the wire ("none", "kill9", ...). */
const char *chaosModeName(ChaosMode mode);

/**
 * One parsed, validated, canonicalized request.
 *
 * Every field is populated (defaults applied by parseRequest), so two
 * requests with equal fields are the *same* request regardless of
 * which optional members their JSON spelled out.
 */
struct ServeRequest
{
    RequestKind kind = RequestKind::Ping;

    /** Client-chosen correlation id, echoed verbatim in the response
     *  (responses may complete out of order under concurrency). */
    std::string id;

    /** Admission-control principal; never affects the payload. */
    std::string tenant = "default";

    // ---- GEMM / sweep parameters (kind Gemm and Sweep) ----
    blas::GemmCombo combo = blas::GemmCombo::Sgemm;
    std::size_t m = 0, n = 0, k = 0;
    std::size_t batch = 1; ///< strided-batch count (the ext_batched_gemm path)
    double alpha = 1.0;
    double beta = 0.0;
    int reps = 10; ///< measurement repetitions per point

    /** Sweep grid: n, 2n, 4n, ... up to sweepMaxN (kind Sweep only). */
    std::size_t sweepMaxN = 0;

    /** Per-request *simulated-time* deadline budget, seconds; flows
     *  into bench::repeatMeasureResilient and orders load shedding. */
    double deadlineSec = 60.0;

    /** Seeded fault injection for this request ("" = none); the spec's
     *  canonical string participates in the request key, so a faulted
     *  request replays byte-identically. */
    std::string injectSpec;
    fault::FaultSpec faults;

    /** Test-only worker failure mode (see ChaosMode). */
    ChaosMode chaos = ChaosMode::None;

    bool wantsExecution() const
    {
        return kind == RequestKind::Gemm || kind == RequestKind::Sweep;
    }
};

/**
 * Parse and validate one request frame.
 *
 * Error taxonomy: JSON that does not parse, out-of-domain values
 * (n = 0, reps < 1, deadline <= 0, bad combo, a malformed inject
 * spec), and oversized problems (dimensions above kMaxRequestN,
 * sweeps above kMaxSweepPoints points) are InvalidArgument; an
 * unknown "kind" or "chaos" is Unsupported. The daemon answers with
 * the corresponding error response and keeps the connection.
 */
Result<ServeRequest> parseRequest(const std::string &frame);

/** Largest accepted m/n/k (keeps one request's simulation bounded). */
inline constexpr std::size_t kMaxRequestN = 16384;
/** Largest accepted batch count. */
inline constexpr std::size_t kMaxRequestBatch = 4096;
/** Largest accepted repetition count. */
inline constexpr int kMaxRequestReps = 10000;
/** Most points a sweep request may expand to. */
inline constexpr std::size_t kMaxSweepPoints = 16;

/**
 * The canonical execution identity of @p request: a stable string over
 * exactly the fields that influence the simulated result (kind, combo,
 * shape, batch, alpha/beta bit patterns, reps, deadline, inject spec,
 * chaos). The id and tenant are deliberately excluded — they select
 * the respondent, not the result — so the server can serve concurrent
 * identical requests from one execution (single-flight coalescing)
 * without violating the determinism contract. Doubles are rendered by
 * bit pattern, so keys never lose precision.
 */
std::string canonicalKey(const ServeRequest &request);

// ---- Responses ------------------------------------------------------------

/**
 * Build the response envelope for a successful request: a compact
 * one-line JSON document `{"id":...,"code":"Ok","payload":...}`.
 * Serialization is deterministic (insertion-ordered keys, %.17g
 * numbers), which is what the replay gate byte-compares.
 */
std::string okResponse(const std::string &id, const JsonValue &payload);

/**
 * Build the response envelope for a failed request:
 * `{"id":...,"code":"<ErrorCode>","error":...}`. The message must be
 * deterministic — no pids, durations, or addresses — so degraded
 * responses replay byte-identically too.
 */
std::string errorResponse(const std::string &id, const Status &status);

/** Parsed response envelope (client side and tests). */
struct ServeResponse
{
    std::string id;
    ErrorCode code = ErrorCode::Internal;
    std::string error;            ///< empty on success
    JsonValue payload;            ///< null on failure
};

/** Parse a response frame; malformed envelopes are Internal. */
Result<ServeResponse> parseResponse(const std::string &frame);

} // namespace serve
} // namespace mc

#endif // MC_SERVE_PROTOCOL_HH
