#include "engine.hh"

#include <csignal>
#include <cstdint>

#include <unistd.h>

#include "arch/calibration.hh"
#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "exec/sweep_runner.hh"
#include "hip/runtime.hh"

namespace mc {
namespace serve {

namespace {

/** Fire the requested failure mode in the calling process. Never
 *  returns for every mode but None. */
void
fireChaos(ChaosMode mode)
{
    switch (mode) {
      case ChaosMode::None:
        return;
      case ChaosMode::Kill9:
        ::raise(SIGKILL);
        break;
      case ChaosMode::Segv:
        ::raise(SIGSEGV);
        break;
      case ChaosMode::Hang:
        for (;;)
            ::pause();
      case ChaosMode::Exit3:
        ::_exit(exit_code::BudgetExhausted);
    }
    // A raised fatal signal that was somehow handled still must not
    // fall through into measurement.
    ::_exit(exit_code::Failure);
}

/** One measured grid point of the request. */
struct PointOutcome
{
    std::size_t n = 0;
    bench::Measurement m;
    int macroTile = 0;
    bool usedMatrixCores = false;
    /** --verify outcome: unset when the check was skipped. */
    bool verified = false;
    std::uint64_t verifyMaxUlp = 0;
    std::size_t verifyBatchEntries = 0;
};

/**
 * Measure one (m, n, k) point exactly like a fig6 sweep point: fresh
 * device, injector seeded from the point key, per-rep noise reseeds.
 */
Result<PointOutcome>
measurePoint(const ServeRequest &request, const EngineOptions &options,
             std::size_t edge)
{
    // The seed key covers the full execution identity plus the grid
    // point, so a sweep's n = 1024 point and a standalone n = 1024
    // request are *different* points (the sweep key differs) while the
    // same request replayed is always the same point.
    const std::string key = canonicalKey(request) + "#" +
                            std::to_string(edge);

    fault::Injector faults(request.faults,
                           fault::faultSeed(exec::deriveSeed(
                               kServeSeedName, key, 0)));
    sim::SimOptions sim_opts;
    sim_opts.faults = faults.enabled() ? &faults : nullptr;
    hip::Runtime rt(arch::defaultCdna2(), sim_opts);
    blas::GemmEngine engine(rt);
    engine.usePlanCache(options.planCache);

    blas::GemmConfig cfg;
    cfg.combo = request.combo;
    if (request.kind == RequestKind::Sweep) {
        cfg.m = cfg.n = cfg.k = edge;
    } else {
        cfg.m = request.m;
        cfg.n = request.n;
        cfg.k = request.k;
    }
    cfg.alpha = request.alpha;
    cfg.beta = request.beta;
    cfg.batchCount = request.batch;

    PointOutcome out;
    out.n = edge;
    bench::ResilientOptions ropts;
    ropts.repetitions = request.reps;
    ropts.deadlineSec = request.deadlineSec;
    auto measured = bench::repeatMeasureResilient(
        [&](int rep) -> Result<bench::TimedSample> {
            rt.gpu().reseedNoise(exec::deriveSeed(
                kServeSeedName, key, static_cast<std::uint64_t>(rep)));
            auto result = engine.run(cfg);
            if (!result.isOk())
                return result.status();
            out.macroTile = result.value().macroTile;
            out.usedMatrixCores = result.value().usedMatrixCores;
            return bench::TimedSample{result.value().throughput(),
                                      result.value().kernel.seconds};
        },
        ropts);
    if (!measured.isOk())
        return measured.status();
    out.m = measured.value();

    // Deterministic host verification (mc_serve --verify): the
    // randomized scheme's seed derives from the point key, so the
    // check — like the measurement — depends only on the request.
    // Batched requests verify through the strided-batched drivers;
    // the staged operands come from the process-wide pack cache, so a
    // replayed request re-verifies against warm panels.
    if (options.verifyGemms && !out.m.aborted &&
        cfg.m <= options.verifyMaxN && cfg.n <= options.verifyMaxN &&
        cfg.k <= options.verifyMaxN) {
        const blas::VerifyResult v = engine.verify(
            cfg, blas::VerifyScheme::Random,
            exec::deriveSeed(kServeSeedName, key + "#verify", 0));
        if (!v.passed) {
            return Status(ErrorCode::Internal,
                          "host verification failed: " + v.detail);
        }
        out.verified = true;
        out.verifyMaxUlp = v.maxUlp;
        out.verifyBatchEntries = v.batchEntries;
    }
    return out;
}

/** Render one point's result object. */
JsonValue
pointJson(const PointOutcome &out)
{
    JsonValue doc = JsonValue::object();
    doc.set("n", static_cast<std::int64_t>(out.n));
    doc.set("aborted", out.m.aborted);
    doc.set("samples", out.m.samplesTaken);
    doc.set("retries", out.m.retries);
    if (!out.m.aborted && out.m.samplesTaken > 0) {
        doc.set("tflops", out.m.value() / 1e12);
        doc.set("spread", out.m.stats.stddev);
        doc.set("macro_tile", out.macroTile);
        doc.set("path", out.usedMatrixCores ? "MatrixCore" : "SIMD");
    }
    if (out.verified) {
        doc.set("verified", true);
        doc.set("verify_max_ulp",
                static_cast<std::int64_t>(out.verifyMaxUlp));
        doc.set("verify_batch_entries",
                static_cast<std::int64_t>(out.verifyBatchEntries));
    }
    return doc;
}

} // namespace

Result<JsonValue>
executePayload(const ServeRequest &request, const EngineOptions &options)
{
    mc_assert(request.wantsExecution(),
              "executePayload handles gemm/sweep requests only");

    if (request.chaos != ChaosMode::None) {
        if (!options.allowChaos) {
            return Status::failedPrecondition(
                "chaos requests need a daemon started with --allow-chaos "
                "and worker isolation");
        }
        fireChaos(request.chaos);
    }

    JsonValue payload = JsonValue::object();
    payload.set("kind", requestKindName(request.kind));
    payload.set("combo", blas::comboInfo(request.combo).name);
    payload.set("m", static_cast<std::int64_t>(request.m));
    payload.set("n", static_cast<std::int64_t>(request.n));
    payload.set("k", static_cast<std::int64_t>(request.k));
    payload.set("batch", static_cast<std::int64_t>(request.batch));
    if (request.faults.any())
        payload.set("inject", request.injectSpec);

    if (request.kind == RequestKind::Gemm) {
        auto point = measurePoint(request, options, request.n);
        if (!point.isOk())
            return point.status();
        JsonValue doc = pointJson(point.value());
        // Flatten the single point into the payload root.
        for (const auto &[name, value] : doc.members())
            payload.set(name, value);
        return payload;
    }

    // Sweep: n, 2n, 4n, ... sweepMaxN, ending early at the first
    // simulated-memory exhaustion (the paper's convention). A point
    // that fails outright fails the whole request — partial sweeps
    // would not replay byte-identically against a full one.
    JsonValue points = JsonValue::array();
    for (std::size_t edge = request.n; edge <= request.sweepMaxN;
         edge *= 2) {
        auto point = measurePoint(request, options, edge);
        if (!point.isOk())
            return point.status();
        const bool aborted = point.value().m.aborted;
        points.append(pointJson(point.value()));
        if (aborted)
            break;
    }
    payload.set("points", points);
    return payload;
}

} // namespace serve
} // namespace mc
