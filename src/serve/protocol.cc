#include "protocol.hh"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"

namespace mc {
namespace serve {

namespace {

/** Full read of @p size bytes; short only at EOF. */
Result<std::size_t>
readFully(int fd, void *buffer, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, static_cast<char *>(buffer) + done,
                                 size - done);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(
                std::string("socket read failed: ") + std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
    return done;
}

} // namespace

Status
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes) {
        return Status::invalidArgument(
            "frame payload of " + std::to_string(payload.size()) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte frame limit");
    }
    unsigned char prefix[4];
    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    prefix[0] = static_cast<unsigned char>(size >> 24);
    prefix[1] = static_cast<unsigned char>(size >> 16);
    prefix[2] = static_cast<unsigned char>(size >> 8);
    prefix[3] = static_cast<unsigned char>(size);

    // One buffered message keeps the frame write to a single syscall in
    // the common case, so concurrent responders interleave at frame
    // granularity under the connection write lock, never mid-prefix.
    std::string wire(reinterpret_cast<const char *>(prefix), 4);
    wire += payload;

    std::size_t done = 0;
    while (done < wire.size()) {
        const ssize_t n = ::write(fd, wire.data() + done,
                                  wire.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET) {
                // The peer closed early. With SIGPIPE ignored this is a
                // per-request degradation, not a process death.
                return Status::unavailable("peer closed the connection");
            }
            return Status::internal(std::string("socket write failed: ") +
                                    std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
    return Status::ok();
}

Result<std::optional<std::string>>
readFrame(int fd)
{
    unsigned char prefix[4];
    auto got = readFully(fd, prefix, sizeof(prefix));
    if (!got.isOk())
        return got.status();
    if (got.value() == 0)
        return std::optional<std::string>(); // clean EOF
    if (got.value() < sizeof(prefix)) {
        return Status::unavailable(
            "stream ended inside a frame length prefix");
    }
    const std::uint32_t size = (std::uint32_t(prefix[0]) << 24) |
                               (std::uint32_t(prefix[1]) << 16) |
                               (std::uint32_t(prefix[2]) << 8) |
                               std::uint32_t(prefix[3]);
    if (size > kMaxFrameBytes) {
        return Status::invalidArgument(
            "frame length " + std::to_string(size) + " exceeds the " +
            std::to_string(kMaxFrameBytes) + "-byte frame limit");
    }
    std::string payload(size, '\0');
    got = size == 0 ? Result<std::size_t>(std::size_t{0})
                    : readFully(fd, payload.data(), size);
    if (!got.isOk())
        return got.status();
    if (got.value() < size) {
        return Status::unavailable("stream ended inside a frame payload");
    }
    return std::optional<std::string>(std::move(payload));
}

// ---- Request parsing ------------------------------------------------------

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Gemm:
        return "gemm";
      case RequestKind::Sweep:
        return "sweep";
      case RequestKind::Ping:
        return "ping";
      case RequestKind::Stats:
        return "stats";
      case RequestKind::Shutdown:
        return "shutdown";
    }
    return "?";
}

const char *
chaosModeName(ChaosMode mode)
{
    switch (mode) {
      case ChaosMode::None:
        return "none";
      case ChaosMode::Kill9:
        return "kill9";
      case ChaosMode::Segv:
        return "segv";
      case ChaosMode::Hang:
        return "hang";
      case ChaosMode::Exit3:
        return "exit3";
    }
    return "?";
}

namespace {

/** The library combo wire names, lowercase (the paper's five plus
 *  i8gemm — every combo the engine can execute). */
bool
parseComboName(const std::string &name, blas::GemmCombo &out)
{
    for (blas::GemmCombo combo : blas::allLibraryCombos) {
        if (name == blas::comboInfo(combo).name) {
            out = combo;
            return true;
        }
    }
    return false;
}

Status
badField(const std::string &field, const std::string &why)
{
    return Status::invalidArgument("request field '" + field + "' " + why);
}

/** Fetch an optional member, enforcing its JSON type. */
Result<const JsonValue *>
optionalMember(const JsonValue &doc, const std::string &key,
               JsonValue::Type type, const char *type_name)
{
    const JsonValue *value = doc.find(key);
    if (!value)
        return static_cast<const JsonValue *>(nullptr);
    if (value->type() != type)
        return badField(key, std::string("must be a ") + type_name);
    return value;
}

Result<std::size_t>
sizeField(const JsonValue &doc, const std::string &key,
          std::size_t fallback, std::size_t min, std::size_t max)
{
    auto member = optionalMember(doc, key, JsonValue::Type::Number,
                                 "number");
    if (!member.isOk())
        return member.status();
    if (!member.value())
        return fallback;
    const double raw = member.value()->asNumber();
    const std::int64_t rounded = member.value()->asInt();
    if (raw != static_cast<double>(rounded) || rounded < 0)
        return badField(key, "must be a non-negative integer");
    const std::size_t value = static_cast<std::size_t>(rounded);
    if (value < min || value > max) {
        return badField(key, "must be in [" + std::to_string(min) + ", " +
                                 std::to_string(max) + "]");
    }
    return value;
}

} // namespace

Result<ServeRequest>
parseRequest(const std::string &frame)
{
    auto parsed = JsonValue::parse(frame);
    if (!parsed.isOk()) {
        return Status::invalidArgument("request is not valid JSON: " +
                                       parsed.status().message());
    }
    const JsonValue &doc = parsed.value();
    if (!doc.isObject())
        return Status::invalidArgument("request must be a JSON object");

    ServeRequest req;

    auto kind = optionalMember(doc, "kind", JsonValue::Type::String,
                               "string");
    if (!kind.isOk())
        return kind.status();
    const std::string kind_name =
        kind.value() ? kind.value()->asString() : "ping";
    if (kind_name == "gemm") {
        req.kind = RequestKind::Gemm;
    } else if (kind_name == "sweep") {
        req.kind = RequestKind::Sweep;
    } else if (kind_name == "ping") {
        req.kind = RequestKind::Ping;
    } else if (kind_name == "stats") {
        req.kind = RequestKind::Stats;
    } else if (kind_name == "shutdown") {
        req.kind = RequestKind::Shutdown;
    } else {
        return Status::unsupported("unknown request kind '" + kind_name +
                                   "'");
    }

    auto id = optionalMember(doc, "id", JsonValue::Type::String, "string");
    if (!id.isOk())
        return id.status();
    if (id.value())
        req.id = id.value()->asString();
    if (req.id.size() > 256)
        return badField("id", "must not exceed 256 bytes");

    auto tenant = optionalMember(doc, "tenant", JsonValue::Type::String,
                                 "string");
    if (!tenant.isOk())
        return tenant.status();
    if (tenant.value() && !tenant.value()->asString().empty())
        req.tenant = tenant.value()->asString();
    if (req.tenant.size() > 64)
        return badField("tenant", "must not exceed 64 bytes");

    if (!req.wantsExecution()) {
        // Control requests carry no execution parameters; reject any
        // that are present so a typoed "kind" cannot silently drop a
        // workload's parameters.
        for (const char *field :
             {"combo", "m", "n", "k", "batch", "reps", "deadline_sec",
              "inject", "chaos", "sweep_max_n", "alpha", "beta"}) {
            if (doc.has(field)) {
                return badField(field, "is only valid on gemm/sweep "
                                       "requests");
            }
        }
        return req;
    }

    auto combo = optionalMember(doc, "combo", JsonValue::Type::String,
                                "string");
    if (!combo.isOk())
        return combo.status();
    if (combo.value() &&
        !parseComboName(combo.value()->asString(), req.combo)) {
        return badField("combo", "must be one of dgemm/sgemm/hgemm/hhs/hss");
    }

    auto n = sizeField(doc, "n", 0, 1, kMaxRequestN);
    if (!n.isOk())
        return n.status();
    if (n.value() == 0)
        return badField("n", "is required for gemm/sweep requests");
    req.n = n.value();
    auto m = sizeField(doc, "m", req.n, 1, kMaxRequestN);
    if (!m.isOk())
        return m.status();
    req.m = m.value();
    auto k = sizeField(doc, "k", req.n, 1, kMaxRequestN);
    if (!k.isOk())
        return k.status();
    req.k = k.value();

    auto batch = sizeField(doc, "batch", 1, 1, kMaxRequestBatch);
    if (!batch.isOk())
        return batch.status();
    req.batch = batch.value();

    auto reps = sizeField(doc, "reps", 10, 1,
                          static_cast<std::size_t>(kMaxRequestReps));
    if (!reps.isOk())
        return reps.status();
    req.reps = static_cast<int>(reps.value());

    for (auto [field, out] : {std::pair<const char *, double *>{
                                  "alpha", &req.alpha},
                              {"beta", &req.beta}}) {
        auto member = optionalMember(doc, field, JsonValue::Type::Number,
                                     "number");
        if (!member.isOk())
            return member.status();
        if (member.value())
            *out = member.value()->asNumber();
    }

    auto deadline = optionalMember(doc, "deadline_sec",
                                   JsonValue::Type::Number, "number");
    if (!deadline.isOk())
        return deadline.status();
    if (deadline.value())
        req.deadlineSec = deadline.value()->asNumber();
    if (!(req.deadlineSec > 0.0) || req.deadlineSec > 86400.0)
        return badField("deadline_sec", "must be in (0, 86400]");

    if (req.kind == RequestKind::Sweep) {
        auto sweep_max = sizeField(doc, "sweep_max_n", req.n, req.n,
                                   kMaxRequestN);
        if (!sweep_max.isOk())
            return sweep_max.status();
        req.sweepMaxN = sweep_max.value();
        std::size_t points = 0;
        for (std::size_t edge = req.n; edge <= req.sweepMaxN; edge *= 2)
            ++points;
        if (points > kMaxSweepPoints) {
            return badField("sweep_max_n",
                            "expands to more than " +
                                std::to_string(kMaxSweepPoints) +
                                " points");
        }
    } else if (doc.has("sweep_max_n")) {
        return badField("sweep_max_n", "is only valid on sweep requests");
    }

    auto inject = optionalMember(doc, "inject", JsonValue::Type::String,
                                 "string");
    if (!inject.isOk())
        return inject.status();
    if (inject.value() && !inject.value()->asString().empty()) {
        auto spec = fault::parseFaultSpec(inject.value()->asString());
        if (!spec.isOk()) {
            return badField("inject",
                            "is malformed: " + spec.status().message());
        }
        req.faults = spec.value();
        // Canonical form, not the raw text: "oom=0.01,hang=0" and
        // "oom=0.01" are the same injection and must share one key.
        req.injectSpec = req.faults.toString();
    }

    auto chaos = optionalMember(doc, "chaos", JsonValue::Type::String,
                                "string");
    if (!chaos.isOk())
        return chaos.status();
    if (chaos.value()) {
        const std::string &mode = chaos.value()->asString();
        if (mode == "none") {
            req.chaos = ChaosMode::None;
        } else if (mode == "kill9") {
            req.chaos = ChaosMode::Kill9;
        } else if (mode == "segv") {
            req.chaos = ChaosMode::Segv;
        } else if (mode == "hang") {
            req.chaos = ChaosMode::Hang;
        } else if (mode == "exit3") {
            req.chaos = ChaosMode::Exit3;
        } else {
            return Status::unsupported("unknown chaos mode '" + mode +
                                       "'");
        }
    }
    return req;
}

std::string
canonicalKey(const ServeRequest &request)
{
    char bits[64];
    std::snprintf(bits, sizeof(bits), "%016llx/%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(request.alpha)),
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(request.beta)));
    char deadline_bits[24];
    std::snprintf(deadline_bits, sizeof(deadline_bits), "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(request.deadlineSec)));
    std::string key = requestKindName(request.kind);
    key += '/';
    key += blas::comboInfo(request.combo).name;
    key += '/' + std::to_string(request.m) + 'x' +
           std::to_string(request.n) + 'x' + std::to_string(request.k);
    key += "/b" + std::to_string(request.batch);
    if (request.kind == RequestKind::Sweep)
        key += "/sweep" + std::to_string(request.sweepMaxN);
    key += "/r" + std::to_string(request.reps);
    key += '/';
    key += bits;
    key += "/d";
    key += deadline_bits;
    key += "/i{" + request.injectSpec + '}';
    if (request.chaos != ChaosMode::None) {
        key += "/chaos=";
        key += chaosModeName(request.chaos);
    }
    return key;
}

// ---- Responses ------------------------------------------------------------

std::string
okResponse(const std::string &id, const JsonValue &payload)
{
    JsonValue envelope = JsonValue::object();
    envelope.set("id", id);
    envelope.set("code", errorCodeName(ErrorCode::Ok));
    envelope.set("payload", payload);
    return envelope.serialize(0);
}

std::string
errorResponse(const std::string &id, const Status &status)
{
    mc_assert(!status.isOk(), "errorResponse needs a non-ok status");
    JsonValue envelope = JsonValue::object();
    envelope.set("id", id);
    envelope.set("code", errorCodeName(status.code()));
    envelope.set("error", status.message());
    return envelope.serialize(0);
}

Result<ServeResponse>
parseResponse(const std::string &frame)
{
    auto parsed = JsonValue::parse(frame);
    if (!parsed.isOk()) {
        return Status::internal("response is not valid JSON: " +
                                parsed.status().message());
    }
    const JsonValue &doc = parsed.value();
    if (!doc.isObject() || !doc.has("id") || !doc.has("code"))
        return Status::internal("response envelope is malformed");

    ServeResponse response;
    response.id = doc.at("id").asString();
    if (!errorCodeFromName(doc.at("code").asString(), response.code)) {
        return Status::internal("response carries unknown code '" +
                                doc.at("code").asString() + "'");
    }
    if (const JsonValue *error = doc.find("error"))
        response.error = error->asString();
    if (const JsonValue *payload = doc.find("payload"))
        response.payload = *payload;
    if (response.code == ErrorCode::Ok && !doc.has("payload"))
        return Status::internal("ok response is missing its payload");
    return response;
}

} // namespace serve
} // namespace mc
