/**
 * @file
 * Lightweight top-down profiling of *host* kernels, in the shape of
 * the Arm-Total-Performance / Intel top-down methodology: classify a
 * measured region as frontend-bound, backend-bound, or retiring so
 * tooling (the functional-GEMM autotuner, docs/PERF.md "Autotuning")
 * can prune its search instead of brute-forcing it.
 *
 * Two backends, probed once per process:
 *
 *  - perf_event: cycles / instructions / cache-references /
 *    cache-misses via perf_event_open(2) where the kernel and
 *    container policy allow it (perf_event_paranoid, seccomp). The
 *    classification then follows the standard slot heuristics: high
 *    IPC means the pipeline is retiring useful work; low IPC with a
 *    high cache-miss ratio means the backend is starved by the memory
 *    hierarchy; low IPC with clean caches points at the frontend.
 *
 *  - wallclock: when the counters are unavailable (the common case in
 *    CI containers), only wall time is measured and classification
 *    falls back to a derived arithmetic-intensity model: the caller
 *    supplies the region's algorithmic FLOPs and an estimate of the
 *    bytes it streams, and the achieved FLOP/s / byte/s rates are
 *    compared against rough host envelopes. Coarse by design — it only
 *    has to steer a tuner, not grade a microarchitecture.
 *
 * The profiling layer in src/prof historically models the *simulated*
 * GPU counters (profiler.hh); this file is its host-side sibling.
 */

#ifndef MC_PROF_TOPDOWN_HH
#define MC_PROF_TOPDOWN_HH

#include <cstdint>
#include <functional>

namespace mc {
namespace prof {

/** Top-level buckets of the top-down methodology (Bad Speculation is
 *  folded into Unknown: the portable counter set cannot split it). */
enum class TopdownClass
{
    Unknown,
    FrontendBound,
    BackendBound,
    Retiring,
};

/** Lower-case bucket name ("unknown", "frontend", "backend",
 *  "retiring"). */
const char *topdownClassName(TopdownClass cls);

/** One measured region. Counter fields are zero unless @c hardware. */
struct TopdownSample
{
    /** Wall-clock duration (always measured). */
    double seconds = 0.0;
    /** True when the counter fields below came from perf_event. */
    bool hardware = false;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheRefs = 0;
    std::uint64_t cacheMisses = 0;

    /** Instructions per cycle (0 when cycles were not measured). */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** cache-misses / cache-references (0 when not measured). */
    double missRatio() const
    {
        return cacheRefs ? static_cast<double>(cacheMisses) /
                               static_cast<double>(cacheRefs)
                         : 0.0;
    }
};

/**
 * Caller-supplied knowledge about the measured region, for the
 * wallclock fallback (and to sanity-bound the counter heuristics).
 * All fields optional; zeros mean "unknown".
 */
struct TopdownHints
{
    /** Algorithmic floating-point operations of the region. */
    double flops = 0.0;
    /** Estimated bytes moved through the memory hierarchy. */
    double bytes = 0.0;
    /**
     * Envelope rates for the fallback classification: a region
     * achieving more than half @c peakFlopsPerSec is called retiring;
     * one streaming more than half @c peakBytesPerSec is called
     * backend-bound. The defaults are deliberately conservative
     * single-core host figures; tuners can substitute calibrated ones.
     */
    double peakFlopsPerSec = 8e9;
    double peakBytesPerSec = 16e9;
};

/**
 * Classify one sample. With hardware counters the IPC / miss-ratio
 * heuristics decide; otherwise the arithmetic-intensity fallback runs
 * off the hints (Unknown when the hints are empty too).
 */
TopdownClass classifySample(const TopdownSample &sample,
                            const TopdownHints &hints = TopdownHints());

/**
 * Counter session over the calling thread. Construction probes
 * perf_event_open once; when the probe fails (unsupported kernel,
 * perf_event_paranoid, seccomp) every measurement transparently falls
 * back to wall clock only. Not thread-safe: one collector measures
 * one thread's regions.
 */
class TopdownCounters
{
  public:
    TopdownCounters();
    ~TopdownCounters();

    TopdownCounters(const TopdownCounters &) = delete;
    TopdownCounters &operator=(const TopdownCounters &) = delete;

    /** True when perf_event counters are live for this session. */
    bool hardwareAvailable() const { return _hardware; }

    /** Run @p fn and return its measured sample. */
    TopdownSample measure(const std::function<void()> &fn);

  private:
    static constexpr int kEvents = 4;
    int _fds[kEvents] = {-1, -1, -1, -1};
    bool _hardware = false;
};

/**
 * Name of the backend a fresh TopdownCounters session would use on
 * this host: "perf_event" or "wallclock". Probed once and cached.
 */
const char *topdownBackendName();

} // namespace prof
} // namespace mc

#endif // MC_PROF_TOPDOWN_HH
