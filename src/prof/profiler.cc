#include "profiler.hh"

namespace mc {
namespace prof {

namespace {

constexpr double flopsPerMops = 512.0;
constexpr double flopsPerValuAddMul = 64.0;  ///< 64 threads x 1 op
constexpr double flopsPerValuFma = 128.0;    ///< 64 threads x 2 ops

} // namespace

double
totalFlops(const sim::HwCounters &counters, arch::DataType dt)
{
    return flopBreakdown(counters, dt).total();
}

double
totalFlopsAllTypes(const sim::HwCounters &counters)
{
    return flopBreakdown(counters).total();
}

FlopBreakdown
flopBreakdown(const sim::HwCounters &counters, arch::DataType dt)
{
    FlopBreakdown out;
    out.matrixCoreFlops =
        flopsPerMops * static_cast<double>(counters.mops(dt));
    out.simdFlops =
        flopsPerValuAddMul *
            static_cast<double>(counters.valuCount(dt, sim::ValuOp::Add)) +
        flopsPerValuAddMul *
            static_cast<double>(counters.valuCount(dt, sim::ValuOp::Mul)) +
        flopsPerValuFma *
            static_cast<double>(counters.valuCount(dt, sim::ValuOp::Fma));
    return out;
}

FlopBreakdown
flopBreakdown(const sim::HwCounters &counters)
{
    FlopBreakdown out;
    for (arch::DataType dt : sim::counterTypes) {
        const FlopBreakdown part = flopBreakdown(counters, dt);
        out.matrixCoreFlops += part.matrixCoreFlops;
        out.simdFlops += part.simdFlops;
    }
    return out;
}

void
Profiler::record(const sim::KernelResult &result)
{
    KernelRecord record;
    record.name = result.label;
    record.durationSec = result.seconds;
    record.counters = result.counters;
    _records.push_back(std::move(record));
}

sim::HwCounters
Profiler::aggregate() const
{
    sim::HwCounters total;
    for (const auto &record : _records)
        total += record.counters;
    return total;
}

std::vector<KernelRecord>
Profiler::byName(const std::string &name) const
{
    std::vector<KernelRecord> out;
    for (const auto &record : _records) {
        if (record.name == name)
            out.push_back(record);
    }
    return out;
}

} // namespace prof
} // namespace mc
