/**
 * @file
 * rocprof-equivalent derived metrics over the hardware counters.
 *
 * The paper cannot observe rocBLAS's Matrix Core usage directly, so it
 * derives FLOP counts from SQ counters (Eq. 1) and splits them between
 * Matrix Cores and SIMDs. This module implements those formulas against
 * the simulator's HwCounters, plus a per-kernel collection facility in
 * the shape of a rocprof session.
 */

#ifndef MC_PROF_PROFILER_HH
#define MC_PROF_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/types.hh"
#include "sim/counters.hh"
#include "sim/device.hh"

namespace mc {
namespace prof {

/** FLOPs split by executing unit, derived from counters. */
struct FlopBreakdown
{
    double matrixCoreFlops = 0.0;
    double simdFlops = 0.0;

    double total() const { return matrixCoreFlops + simdFlops; }

    /** Fraction of FLOPs delivered by Matrix Cores (Fig. 8's metric). */
    double
    matrixCoreFraction() const
    {
        const double t = total();
        return t > 0.0 ? matrixCoreFlops / t : 0.0;
    }
};

/**
 * Eq. 1 for one datatype bank: total FLOPs =
 *   512 * SQ_INSTS_VALU_MFMA_MOPS_<T>
 *   + 64 * SQ_INSTS_VALU_ADD_<T> + 64 * SQ_INSTS_VALU_MUL_<T>
 *   + 128 * SQ_INSTS_VALU_FMA_<T>
 */
double totalFlops(const sim::HwCounters &counters, arch::DataType dt);

/** Eq. 1 summed over every datatype bank. */
double totalFlopsAllTypes(const sim::HwCounters &counters);

/** Split Eq. 1 into the Matrix Core and SIMD contributions. */
FlopBreakdown flopBreakdown(const sim::HwCounters &counters);

/** Matrix Core / SIMD split for one datatype bank only. */
FlopBreakdown flopBreakdown(const sim::HwCounters &counters,
                            arch::DataType dt);

/** One profiled kernel dispatch. */
struct KernelRecord
{
    std::string name;
    double durationSec = 0.0;
    sim::HwCounters counters;
};

/**
 * A profiling session: collects per-kernel counter records the way a
 * rocprof run collects rows of its results file.
 */
class Profiler
{
  public:
    /** Record a kernel execution. */
    void record(const sim::KernelResult &result);

    const std::vector<KernelRecord> &records() const { return _records; }

    /** Counters summed over all recorded kernels. */
    sim::HwCounters aggregate() const;

    /** Records whose kernel name matches @p name. */
    std::vector<KernelRecord> byName(const std::string &name) const;

    void clear() { _records.clear(); }

  private:
    std::vector<KernelRecord> _records;
};

} // namespace prof
} // namespace mc

#endif // MC_PROF_PROFILER_HH
