/**
 * @file
 * A roofline model over the simulated devices.
 *
 * The paper's profiling methodology descends from the instruction
 * roofline work it cites (Leinhauser et al., its reference [14]):
 * position each kernel by arithmetic intensity (FLOPs per HBM byte)
 * against the device's compute roofs (per datatype, Matrix Core and
 * SIMD) and its memory roof. The model explains at a glance *why* the
 * GEMM curves of Figs. 6/7 bend: the large-N points slide left past
 * the machine-balance point when the L2 panel reuse collapses.
 */

#ifndef MC_PROF_ROOFLINE_HH
#define MC_PROF_ROOFLINE_HH

#include <string>
#include <vector>

#include "arch/calibration.hh"
#include "sim/device.hh"
#include "sim/kernel.hh"

namespace mc {
namespace prof {

/** Which unit's compute roof applies. */
enum class RoofKind
{
    MatrixCore,
    Simd,
};

/** One compute roof of the device. */
struct ComputeRoof
{
    arch::DataType dtype;
    RoofKind kind = RoofKind::MatrixCore;
    double flopsPerSec = 0.0;

    std::string name() const;
};

/** A kernel's position in the roofline plot. */
struct RooflinePoint
{
    std::string label;
    /** Arithmetic intensity, FLOPs per HBM byte. */
    double intensity = 0.0;
    /** Achieved FLOP/s. */
    double achieved = 0.0;
    /** min(compute roof, bandwidth * intensity) for the kernel's roof. */
    double attainable = 0.0;
    /** True when the binding roof is the memory roof. */
    bool memoryBound = false;

    /** Achieved / attainable. */
    double
    efficiency() const
    {
        return attainable > 0.0 ? achieved / attainable : 0.0;
    }
};

/**
 * Roofline model of one GCD of a CDNA-family device.
 */
class RooflineModel
{
  public:
    /** Build the roofs from a device calibration (per-GCD scope). */
    explicit RooflineModel(const arch::Cdna2Calibration &cal);

    /** Peak HBM bandwidth, bytes/s (the memory roof's slope). */
    double memoryBandwidth() const { return _bandwidth; }

    /** All compute roofs (Matrix Core per datatype, SIMD per datatype). */
    const std::vector<ComputeRoof> &roofs() const { return _roofs; }

    /** The compute roof for a datatype/unit pair; fatal if absent. */
    const ComputeRoof &roof(arch::DataType dtype, RoofKind kind) const;

    /**
     * Intensity at which the compute roof meets the memory roof
     * (the machine-balance point), FLOPs/byte.
     */
    double machineBalance(arch::DataType dtype, RoofKind kind) const;

    /** Attainable FLOP/s at @p intensity under the given roof. */
    double attainable(arch::DataType dtype, RoofKind kind,
                      double intensity) const;

    /**
     * Place a simulated kernel in the plot. The kernel's dominant
     * datatype selects the roof; Matrix Core vs SIMD is chosen by
     * where its FLOPs ran.
     */
    RooflinePoint classify(const sim::KernelProfile &profile,
                           const sim::KernelResult &result) const;

  private:
    double _bandwidth;
    std::vector<ComputeRoof> _roofs;
};

} // namespace prof
} // namespace mc

#endif // MC_PROF_ROOFLINE_HH
