#include "topdown.hh"

#include <chrono>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MC_TOPDOWN_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mc {
namespace prof {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

#ifdef MC_TOPDOWN_HAVE_PERF_EVENT

/** The counter set, in the order TopdownSample stores them. */
constexpr std::uint32_t kEventIds[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES,
    PERF_COUNT_HW_CACHE_MISSES,
};

int
openCounter(std::uint32_t config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

#endif // MC_TOPDOWN_HAVE_PERF_EVENT

} // namespace

const char *
topdownClassName(TopdownClass cls)
{
    switch (cls) {
      case TopdownClass::Unknown: return "unknown";
      case TopdownClass::FrontendBound: return "frontend";
      case TopdownClass::BackendBound: return "backend";
      case TopdownClass::Retiring: return "retiring";
    }
    return "unknown";
}

TopdownClass
classifySample(const TopdownSample &sample, const TopdownHints &hints)
{
    if (sample.hardware && sample.cycles > 0) {
        // Slot heuristics over the portable counter set. The issue
        // width of every CPU this runs on is >= 4, so IPC >= 2 means
        // the pipeline spends most slots retiring real work; below
        // that the miss ratio arbitrates between a starved backend
        // and a starved frontend.
        const double ipc = sample.ipc();
        const double misses = sample.missRatio();
        if (ipc >= 2.0)
            return TopdownClass::Retiring;
        if (misses >= 0.05 || sample.cacheRefs == 0)
            return TopdownClass::BackendBound;
        if (ipc >= 1.0)
            return TopdownClass::Retiring;
        return TopdownClass::FrontendBound;
    }
    // Wallclock fallback: derived arithmetic-intensity model.
    if (sample.seconds <= 0.0 ||
        (hints.flops <= 0.0 && hints.bytes <= 0.0))
        return TopdownClass::Unknown;
    const double flops_rate = hints.flops / sample.seconds;
    const double bytes_rate = hints.bytes / sample.seconds;
    if (hints.bytes > 0.0 && bytes_rate >= 0.5 * hints.peakBytesPerSec)
        return TopdownClass::BackendBound;
    if (hints.flops > 0.0 && flops_rate >= 0.5 * hints.peakFlopsPerSec)
        return TopdownClass::Retiring;
    // Neither envelope is approached: the region is stalling on
    // something the two rates cannot see. For cache-blocked numeric
    // kernels that is almost always the memory hierarchy.
    return TopdownClass::BackendBound;
}

TopdownCounters::TopdownCounters()
{
#ifdef MC_TOPDOWN_HAVE_PERF_EVENT
    _fds[0] = openCounter(kEventIds[0], -1);
    if (_fds[0] < 0)
        return;
    bool ok = true;
    for (int i = 1; i < kEvents; ++i) {
        _fds[i] = openCounter(kEventIds[i], _fds[0]);
        if (_fds[i] < 0) {
            ok = false;
            break;
        }
    }
    if (!ok) {
        for (int i = 0; i < kEvents; ++i) {
            if (_fds[i] >= 0)
                close(_fds[i]);
            _fds[i] = -1;
        }
        return;
    }
    _hardware = true;
#endif
}

TopdownCounters::~TopdownCounters()
{
#ifdef MC_TOPDOWN_HAVE_PERF_EVENT
    for (int i = 0; i < kEvents; ++i)
        if (_fds[i] >= 0)
            close(_fds[i]);
#endif
}

TopdownSample
TopdownCounters::measure(const std::function<void()> &fn)
{
    TopdownSample sample;
#ifdef MC_TOPDOWN_HAVE_PERF_EVENT
    if (_hardware) {
        ioctl(_fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(_fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        const double t0 = nowSeconds();
        fn();
        sample.seconds = nowSeconds() - t0;
        ioctl(_fds[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
        std::uint64_t values[kEvents] = {0, 0, 0, 0};
        bool ok = true;
        for (int i = 0; i < kEvents; ++i) {
            if (read(_fds[i], &values[i], sizeof(values[i])) !=
                static_cast<ssize_t>(sizeof(values[i]))) {
                ok = false;
                break;
            }
        }
        if (ok) {
            sample.hardware = true;
            sample.cycles = values[0];
            sample.instructions = values[1];
            sample.cacheRefs = values[2];
            sample.cacheMisses = values[3];
        }
        return sample;
    }
#endif
    const double t0 = nowSeconds();
    fn();
    sample.seconds = nowSeconds() - t0;
    return sample;
}

const char *
topdownBackendName()
{
    static const bool hardware = [] {
        TopdownCounters probe;
        return probe.hardwareAvailable();
    }();
    return hardware ? "perf_event" : "wallclock";
}

} // namespace prof
} // namespace mc
