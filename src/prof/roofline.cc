#include "roofline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mc {
namespace prof {

std::string
ComputeRoof::name() const
{
    std::string out = arch::dataTypeName(dtype);
    out += kind == RoofKind::MatrixCore ? " MatrixCore" : " SIMD";
    return out;
}

RooflineModel::RooflineModel(const arch::Cdna2Calibration &cal)
    : _bandwidth(cal.hbmBwPerGcd)
{
    // Matrix Core roofs: best dense instruction per datatype pair,
    // scaled to one GCD.
    const double cu_cycles = cal.cusPerGcd * cal.clockHz;
    for (arch::DataType dt :
         {arch::DataType::F64, arch::DataType::F32, arch::DataType::F16,
          arch::DataType::BF16, arch::DataType::I8}) {
        double best = 0.0;
        for (const auto &inst : arch::instructionsFor(cal.arch)) {
            if (inst.typeAB != dt)
                continue;
            best = std::max(best, inst.flopsPerCuPerCycle());
        }
        if (best > 0.0) {
            _roofs.push_back(ComputeRoof{dt, RoofKind::MatrixCore,
                                         best * cu_cycles});
        }
    }

    // SIMD roofs: each 16-wide SIMD retires one VALU instruction per
    // cycle for a 64-thread wavefront every 4 cycles; FMA counts two
    // ops, and f16 packs two lanes' worth per thread.
    const double simd_insts_per_sec =
        static_cast<double>(cal.cusPerGcd) * cal.simdsPerCu *
        cal.clockHz / cal.cyclesPerValuInst;
    const double wave = cal.wavefrontSize;
    for (arch::DataType dt :
         {arch::DataType::F64, arch::DataType::F32, arch::DataType::F16}) {
        const double flops_per_inst =
            (dt == arch::DataType::F16) ? wave * 4.0 : wave * 2.0;
        _roofs.push_back(ComputeRoof{dt, RoofKind::Simd,
                                     simd_insts_per_sec * flops_per_inst});
    }
}

const ComputeRoof &
RooflineModel::roof(arch::DataType dtype, RoofKind kind) const
{
    for (const auto &r : _roofs) {
        if (r.dtype == dtype && r.kind == kind)
            return r;
    }
    mc_fatal("no ", kind == RoofKind::MatrixCore ? "Matrix Core" : "SIMD",
             " roof for datatype ", arch::dataTypeName(dtype));
}

double
RooflineModel::machineBalance(arch::DataType dtype, RoofKind kind) const
{
    return roof(dtype, kind).flopsPerSec / _bandwidth;
}

double
RooflineModel::attainable(arch::DataType dtype, RoofKind kind,
                          double intensity) const
{
    mc_assert(intensity >= 0.0, "negative arithmetic intensity");
    return std::min(roof(dtype, kind).flopsPerSec,
                    _bandwidth * intensity);
}

RooflinePoint
RooflineModel::classify(const sim::KernelProfile &profile,
                        const sim::KernelResult &result) const
{
    RooflinePoint point;
    point.label = profile.label;

    const double flops = result.mfmaFlops + result.simdFlops;
    const double bytes =
        (profile.hbmReadBytes + profile.hbmWriteBytes) *
        result.activeGcds;
    point.intensity = bytes > 0.0 ? flops / bytes : 1e30;
    point.achieved =
        result.seconds > 0.0 ? flops / result.seconds : 0.0;

    const RoofKind kind = result.mfmaFlops >= result.simdFlops
                              ? RoofKind::MatrixCore
                              : RoofKind::Simd;
    const arch::DataType dt = profile.dominantType();
    const double per_gcd_attainable =
        attainable(dt, kind, point.intensity);
    point.attainable = per_gcd_attainable * result.activeGcds;
    point.memoryBound =
        _bandwidth * point.intensity < roof(dt, kind).flopsPerSec;
    return point;
}

} // namespace prof
} // namespace mc
