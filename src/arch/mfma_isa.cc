#include "mfma_isa.hh"

#include "common/logging.hh"

namespace mc {
namespace arch {

std::string
MfmaInstruction::typeString() const
{
    std::string out = dataTypeName(typeCD);
    out += " <- ";
    out += dataTypeName(typeAB);
    return out;
}

namespace {

MfmaInstruction
makeInst(GpuArch arch, std::string mnemonic, DataType cd, DataType ab,
         int m, int n, int k, int blocks, int latency)
{
    MfmaInstruction inst;
    inst.mnemonic = std::move(mnemonic);
    inst.arch = arch;
    inst.typeCD = cd;
    inst.typeAB = ab;
    inst.shape = MfmaShape{m, n, k, blocks};
    inst.latencyCycles = latency;
    inst.waveSize = (arch == GpuArch::Ampere) ? 32 : 64;
    return inst;
}

std::vector<MfmaInstruction>
buildCdna1Table()
{
    using DT = DataType;
    const auto A = GpuArch::Cdna1;
    std::vector<MfmaInstruction> t;

    // First-generation Matrix Cores: no FP64 MFMA at all, FP32 and
    // FP16 at the same per-CU rates the second generation kept, and
    // BF16 only at half rate (the CDNA2 "_1k" shapes do not exist).
    t.push_back(makeInst(A, "v_mfma_f32_16x16x4f32", DT::F32, DT::F32,
                         16, 16, 4, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x2f32", DT::F32, DT::F32,
                         32, 32, 2, 1, 64));
    t.push_back(makeInst(A, "v_mfma_f32_4x4x1_16b_f32", DT::F32, DT::F32,
                         4, 4, 1, 16, 8));
    t.push_back(makeInst(A, "v_mfma_f32_16x16x16f16", DT::F32, DT::F16,
                         16, 16, 16, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x8f16", DT::F32, DT::F16,
                         32, 32, 8, 1, 64));
    t.push_back(makeInst(A, "v_mfma_f32_16x16x8bf16", DT::F32, DT::BF16,
                         16, 16, 8, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x4bf16", DT::F32, DT::BF16,
                         32, 32, 4, 1, 64));
    t.push_back(makeInst(A, "v_mfma_i32_16x16x16i8", DT::I32, DT::I8,
                         16, 16, 16, 1, 32));
    t.push_back(makeInst(A, "v_mfma_i32_32x32x8i8", DT::I32, DT::I8,
                         32, 32, 8, 1, 64));

    return t;
}

std::vector<MfmaInstruction>
buildCdna2Table()
{
    using DT = DataType;
    const auto A = GpuArch::Cdna2;
    std::vector<MfmaInstruction> t;

    // --- FP64 <- FP64 -----------------------------------------------------
    // Paper Table II measures 32 cycles for 16x16x4, i.e. 256 FP64
    // FLOPS/CU/cycle (the rate Section V-C quotes for one MI250X CU).
    t.push_back(makeInst(A, "v_mfma_f64_16x16x4_f64", DT::F64, DT::F64,
                         16, 16, 4, 1, 32));
    // The 4x4 multi-block variant runs at half the dense FP64 rate.
    t.push_back(makeInst(A, "v_mfma_f64_4x4x4_4b_f64", DT::F64, DT::F64,
                         4, 4, 4, 4, 16));

    // --- FP32 <- FP32 (256 FLOPS/CU/cycle path) ---------------------------
    t.push_back(makeInst(A, "v_mfma_f32_16x16x4_f32", DT::F32, DT::F32,
                         16, 16, 4, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x2_f32", DT::F32, DT::F32,
                         32, 32, 2, 1, 64));
    t.push_back(makeInst(A, "v_mfma_f32_16x16x1_4b_f32", DT::F32, DT::F32,
                         16, 16, 1, 4, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x1_2b_f32", DT::F32, DT::F32,
                         32, 32, 1, 2, 64));
    t.push_back(makeInst(A, "v_mfma_f32_4x4x1_16b_f32", DT::F32, DT::F32,
                         4, 4, 1, 16, 8));

    // --- FP32 <- FP16 (1024 FLOPS/CU/cycle path) --------------------------
    t.push_back(makeInst(A, "v_mfma_f32_16x16x16_f16", DT::F32, DT::F16,
                         16, 16, 16, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x8_f16", DT::F32, DT::F16,
                         32, 32, 8, 1, 64));
    t.push_back(makeInst(A, "v_mfma_f32_16x16x4_4b_f16", DT::F32, DT::F16,
                         16, 16, 4, 4, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x4_2b_f16", DT::F32, DT::F16,
                         32, 32, 4, 2, 64));
    t.push_back(makeInst(A, "v_mfma_f32_4x4x4_16b_f16", DT::F32, DT::F16,
                         4, 4, 4, 16, 8));

    // --- FP32 <- BF16 (CDNA2 "_1k" full-rate variants) --------------------
    t.push_back(makeInst(A, "v_mfma_f32_16x16x16_bf16_1k", DT::F32, DT::BF16,
                         16, 16, 16, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x8_bf16_1k", DT::F32, DT::BF16,
                         32, 32, 8, 1, 64));
    // CDNA1-heritage half-rate shapes kept for ISA completeness.
    t.push_back(makeInst(A, "v_mfma_f32_16x16x8_bf16", DT::F32, DT::BF16,
                         16, 16, 8, 1, 32));
    t.push_back(makeInst(A, "v_mfma_f32_32x32x4_bf16", DT::F32, DT::BF16,
                         32, 32, 4, 1, 64));

    // --- I32 <- I8 (1024 MACs/CU/cycle path) ------------------------------
    t.push_back(makeInst(A, "v_mfma_i32_16x16x16_i8", DT::I32, DT::I8,
                         16, 16, 16, 1, 32));
    t.push_back(makeInst(A, "v_mfma_i32_32x32x8_i8", DT::I32, DT::I8,
                         32, 32, 8, 1, 64));
    t.push_back(makeInst(A, "v_mfma_i32_4x4x4_16b_i8", DT::I32, DT::I8,
                         4, 4, 4, 16, 8));

    return t;
}

std::vector<MfmaInstruction>
buildAmpereTable()
{
    using DT = DataType;
    const auto A = GpuArch::Ampere;
    std::vector<MfmaInstruction> t;

    // Latencies chosen so one SM (4 Tensor Cores) sustains the datasheet
    // rates: 2048 FP16 FLOP/SM/cycle (312 TFLOPS at 1.41 GHz x 108 SMs)
    // and 128 FP64 FLOP/SM/cycle (19.5 TFLOPS).
    t.push_back(makeInst(A, "mma.m16n8k8.f32.f16", DT::F32, DT::F16,
                         16, 8, 8, 1, 4));
    t.push_back(makeInst(A, "mma.m16n8k16.f32.f16", DT::F32, DT::F16,
                         16, 8, 16, 1, 8));
    t.push_back(makeInst(A, "mma.m16n8k8.f16.f16", DT::F16, DT::F16,
                         16, 8, 8, 1, 4));
    t.push_back(makeInst(A, "mma.m16n8k16.f16.f16", DT::F16, DT::F16,
                         16, 8, 16, 1, 8));
    t.push_back(makeInst(A, "mma.m8n8k4.f64", DT::F64, DT::F64,
                         8, 8, 4, 1, 16));
    t.push_back(makeInst(A, "mma.m16n8k8.f32.bf16", DT::F32, DT::BF16,
                         16, 8, 8, 1, 4));
    t.push_back(makeInst(A, "mma.m16n8k16.f32.bf16", DT::F32, DT::BF16,
                         16, 8, 16, 1, 8));
    t.push_back(makeInst(A, "mma.m16n8k32.i32.i8", DT::I32, DT::I8,
                         16, 8, 32, 1, 8));

    return t;
}

} // namespace

const std::vector<MfmaInstruction> &
cdna1Instructions()
{
    static const std::vector<MfmaInstruction> table = buildCdna1Table();
    return table;
}

const std::vector<MfmaInstruction> &
cdna2Instructions()
{
    static const std::vector<MfmaInstruction> table = buildCdna2Table();
    return table;
}

const std::vector<MfmaInstruction> &
ampereInstructions()
{
    static const std::vector<MfmaInstruction> table = buildAmpereTable();
    return table;
}

const std::vector<MfmaInstruction> &
instructionsFor(GpuArch arch)
{
    switch (arch) {
      case GpuArch::Cdna1: return cdna1Instructions();
      case GpuArch::Cdna2: return cdna2Instructions();
      case GpuArch::Ampere: return ampereInstructions();
    }
    mc_panic("unreachable architecture in instructionsFor");
}

const MfmaInstruction *
findInstruction(GpuArch arch, DataType type_cd, DataType type_ab,
                const MfmaShape &shape)
{
    for (const auto &inst : instructionsFor(arch)) {
        if (inst.typeCD == type_cd && inst.typeAB == type_ab &&
            inst.shape == shape) {
            return &inst;
        }
    }
    return nullptr;
}

const MfmaInstruction *
findInstruction(GpuArch arch, const std::string &mnemonic)
{
    for (const auto &inst : instructionsFor(arch)) {
        if (inst.mnemonic == mnemonic)
            return &inst;
    }
    return nullptr;
}

std::vector<const MfmaInstruction *>
instructionsForTypes(GpuArch arch, DataType type_cd, DataType type_ab)
{
    std::vector<const MfmaInstruction *> out;
    for (const auto &inst : instructionsFor(arch)) {
        if (inst.typeCD == type_cd && inst.typeAB == type_ab)
            out.push_back(&inst);
    }
    return out;
}

bool
typesSupported(GpuArch arch, DataType type_cd, DataType type_ab)
{
    return !instructionsForTypes(arch, type_cd, type_ab).empty();
}

} // namespace arch
} // namespace mc
