/**
 * @file
 * The matrix fused multiply-add instruction tables.
 *
 * Every row of the paper's Table I corresponds to one instruction here,
 * plus the multi-block variants the CDNA2 ISA defines (Section II: "AMD
 * CDNA2 also supports smaller shapes, where a Matrix Core can execute up
 * to four parallel MFMA operations"). Latencies are the values the paper
 * measures in Table II; for shapes the paper does not time, we use the
 * values implied by AMD's documented FLOPS/CU/cycle via the paper's
 * relation  FLOPS/CU/cycle = 8*m*n*k*blocks / latency.
 */

#ifndef MC_ARCH_MFMA_ISA_HH
#define MC_ARCH_MFMA_ISA_HH

#include <optional>
#include <string>
#include <vector>

#include "arch/types.hh"

namespace mc {
namespace arch {

/**
 * One matrix fused multiply-add instruction: D <- A*B + C executed
 * collectively by the threads of a wavefront/warp.
 */
struct MfmaInstruction
{
    /** Assembly mnemonic, e.g. "v_mfma_f32_16x16x16_f16". */
    std::string mnemonic;
    GpuArch arch = GpuArch::Cdna2;
    DataType typeCD = DataType::F32; ///< C and D element type
    DataType typeAB = DataType::F32; ///< A and B element type
    MfmaShape shape;
    /**
     * Issue-to-issue latency in cycles for back-to-back independent
     * issues from one wavefront (the quantity Table II reports).
     */
    int latencyCycles = 0;
    /** Threads that cooperate on the instruction (64 CDNA2, 32 Ampere). */
    int waveSize = 64;

    /** Floating-point (or integer MAC) operations per execution. */
    long long flopsPerInstruction() const { return shape.flops(); }

    /**
     * Matrix-unit throughput this instruction implies for one CU/SM in
     * FLOPS per cycle, via the paper's relation with 4 units per CU/SM.
     */
    double
    flopsPerCuPerCycle() const
    {
        return 4.0 * static_cast<double>(shape.flops()) / latencyCycles;
    }

    /** "f32 <- f16" datatype summary used in the paper's tables. */
    std::string typeString() const;
};

/**
 * The first-generation (MI100) Matrix Core MFMA table. CDNA1 has no
 * FP64 MFMA instructions and only the half-rate BF16 shapes — the gaps
 * the second generation closed (the "rise" this suite also documents).
 */
const std::vector<MfmaInstruction> &cdna1Instructions();

/**
 * The complete CDNA2 Matrix Core MFMA table (floating point and integer,
 * including multi-block variants).
 */
const std::vector<MfmaInstruction> &cdna2Instructions();

/** The Ampere Tensor Core MMA table used for the comparison figures. */
const std::vector<MfmaInstruction> &ampereInstructions();

/** Instruction table for an architecture. */
const std::vector<MfmaInstruction> &instructionsFor(GpuArch arch);

/**
 * Find the instruction for a datatype/shape combination.
 *
 * @return nullptr when the architecture has no such instruction.
 */
const MfmaInstruction *findInstruction(GpuArch arch, DataType type_cd,
                                       DataType type_ab,
                                       const MfmaShape &shape);

/** Find an instruction by its mnemonic; nullptr when absent. */
const MfmaInstruction *findInstruction(GpuArch arch,
                                       const std::string &mnemonic);

/**
 * All instructions for a datatype pair, e.g. every shape of f32 <- f16.
 */
std::vector<const MfmaInstruction *>
instructionsForTypes(GpuArch arch, DataType type_cd, DataType type_ab);

/**
 * True when the datatype pair is supported at all on the architecture
 * (Table I: Ampere lacks f32 <- f32, CDNA2 lacks f16 <- f16).
 */
bool typesSupported(GpuArch arch, DataType type_cd, DataType type_ab);

} // namespace arch
} // namespace mc

#endif // MC_ARCH_MFMA_ISA_HH
