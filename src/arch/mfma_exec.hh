/**
 * @file
 * Functional (bit-level) execution of MFMA instructions.
 *
 * Matrix Cores widen A/B operands to the accumulator precision, form the
 * k-deep dot product in the accumulator, add C once, and write D back in
 * the accumulator type. executeMfma() reproduces that dataflow on host
 * matrices; executeMfmaInRegisters() runs the same computation through
 * the per-lane register layout so the fragment machinery can be
 * validated end-to-end against the plain path.
 */

#ifndef MC_ARCH_MFMA_EXEC_HH
#define MC_ARCH_MFMA_EXEC_HH

#include <vector>

#include "arch/layout.hh"
#include "arch/mfma_isa.hh"
#include "common/logging.hh"
#include "fp/traits.hh"

namespace mc {
namespace arch {

/**
 * Per-lane register storage for one operand of one wavefront.
 *
 * @tparam T element storage type.
 */
template <typename T>
struct FragmentRegs
{
    int waveSize = 0;
    int elementsPerLane = 0;
    /** laneData[lane * elementsPerLane + slot]. */
    std::vector<T> laneData;

    FragmentRegs() = default;

    FragmentRegs(int wave_size, int elements_per_lane)
        : waveSize(wave_size), elementsPerLane(elements_per_lane),
          laneData(static_cast<std::size_t>(wave_size) * elements_per_lane)
    {}

    T &
    at(int lane, int slot)
    {
        mc_assert(lane >= 0 && lane < waveSize && slot >= 0 &&
                  slot < elementsPerLane, "fragment register out of range");
        return laneData[static_cast<std::size_t>(lane) * elementsPerLane +
                        slot];
    }

    const T &
    at(int lane, int slot) const
    {
        mc_assert(lane >= 0 && lane < waveSize && slot >= 0 &&
                  slot < elementsPerLane, "fragment register out of range");
        return laneData[static_cast<std::size_t>(lane) * elementsPerLane +
                        slot];
    }
};

/**
 * Execute D <- A*B + C functionally.
 *
 * Operand storage is contiguous per block:
 *   a[block][row][k], b[block][k][col], c/d[block][row][col].
 * Accumulation happens in NumericTraits<TCD>::AccumType with k ascending,
 * matching the Matrix Core dataflow (single rounding at writeback for
 * reduced-precision accumulator types; none for f32/f64 accumulators).
 *
 * @tparam TCD element type of C and D (float, double, or int32).
 * @tparam TAB element type of A and B.
 */
template <typename TCD, typename TAB>
void
executeMfma(const MfmaInstruction &inst, const TAB *a, const TAB *b,
            const TCD *c, TCD *d)
{
    using Acc = typename fp::NumericTraits<TCD>::AccumType;
    const int m = inst.shape.m;
    const int n = inst.shape.n;
    const int k = inst.shape.k;

    for (int blk = 0; blk < inst.shape.blocks; ++blk) {
        const TAB *ab = a + static_cast<std::size_t>(blk) * m * k;
        const TAB *bb = b + static_cast<std::size_t>(blk) * k * n;
        const TCD *cb = c + static_cast<std::size_t>(blk) * m * n;
        TCD *db = d + static_cast<std::size_t>(blk) * m * n;

        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                Acc acc = fp::NumericTraits<TCD>::widen(
                    cb[static_cast<std::size_t>(i) * n + j]);
                for (int kk = 0; kk < k; ++kk) {
                    const Acc av = static_cast<Acc>(
                        fp::NumericTraits<TAB>::widen(
                            ab[static_cast<std::size_t>(i) * k + kk]));
                    const Acc bv = static_cast<Acc>(
                        fp::NumericTraits<TAB>::widen(
                            bb[static_cast<std::size_t>(kk) * n + j]));
                    acc += av * bv;
                }
                db[static_cast<std::size_t>(i) * n + j] =
                    fp::NumericTraits<TCD>::narrow(acc);
            }
        }
    }
}

/**
 * Scatter contiguous per-block operand storage into per-lane registers
 * according to the instruction's layout.
 */
template <typename T>
FragmentRegs<T>
scatterToRegisters(const MfmaInstruction &inst, Operand op, const T *data)
{
    const OperandLayout layout(inst, op);
    FragmentRegs<T> regs(layout.waveSize(), layout.elementsPerLane());
    const int rows = layout.rows();
    const int cols = layout.cols();

    for (int blk = 0; blk < layout.blocks(); ++blk) {
        const T *src = data + static_cast<std::size_t>(blk) * rows * cols;
        for (int r = 0; r < rows; ++r) {
            for (int col = 0; col < cols; ++col) {
                const RegLocation loc =
                    layout.locationOf(ElementCoord{blk, r, col});
                regs.at(loc.lane, loc.slot) =
                    src[static_cast<std::size_t>(r) * cols + col];
            }
        }
    }
    return regs;
}

/**
 * Gather per-lane registers back into contiguous per-block storage.
 */
template <typename T>
void
gatherFromRegisters(const MfmaInstruction &inst, Operand op,
                    const FragmentRegs<T> &regs, T *data)
{
    const OperandLayout layout(inst, op);
    const int rows = layout.rows();
    const int cols = layout.cols();

    for (int lane = 0; lane < layout.waveSize(); ++lane) {
        for (int slot = 0; slot < layout.elementsPerLane(); ++slot) {
            const ElementCoord coord =
                layout.elementAt(RegLocation{lane, slot});
            data[static_cast<std::size_t>(coord.block) * rows * cols +
                 static_cast<std::size_t>(coord.row) * cols + coord.col] =
                regs.at(lane, slot);
        }
    }
}

/**
 * Execute the MFMA through the register layout: scatter A/B/C into
 * lane registers, compute per accumulator element from register-resident
 * operands, and return D's registers. Produces bit-identical results to
 * executeMfma(); the tests rely on that equivalence to validate the
 * layout calculator.
 */
template <typename TCD, typename TAB>
FragmentRegs<TCD>
executeMfmaInRegisters(const MfmaInstruction &inst,
                       const FragmentRegs<TAB> &a_regs,
                       const FragmentRegs<TAB> &b_regs,
                       const FragmentRegs<TCD> &c_regs)
{
    using Acc = typename fp::NumericTraits<TCD>::AccumType;
    const OperandLayout la(inst, Operand::A);
    const OperandLayout lb(inst, Operand::B);
    const OperandLayout lc(inst, Operand::C);
    const OperandLayout ld(inst, Operand::D);

    FragmentRegs<TCD> d_regs(ld.waveSize(), ld.elementsPerLane());

    for (int lane = 0; lane < ld.waveSize(); ++lane) {
        for (int slot = 0; slot < ld.elementsPerLane(); ++slot) {
            const ElementCoord el = ld.elementAt(RegLocation{lane, slot});
            const RegLocation cloc =
                lc.locationOf(ElementCoord{el.block, el.row, el.col});
            Acc acc = fp::NumericTraits<TCD>::widen(
                c_regs.at(cloc.lane, cloc.slot));
            for (int kk = 0; kk < inst.shape.k; ++kk) {
                const RegLocation aloc =
                    la.locationOf(ElementCoord{el.block, el.row, kk});
                const RegLocation bloc =
                    lb.locationOf(ElementCoord{el.block, kk, el.col});
                const Acc av = static_cast<Acc>(
                    fp::NumericTraits<TAB>::widen(
                        a_regs.at(aloc.lane, aloc.slot)));
                const Acc bv = static_cast<Acc>(
                    fp::NumericTraits<TAB>::widen(
                        b_regs.at(bloc.lane, bloc.slot)));
                acc += av * bv;
            }
            d_regs.at(lane, slot) = fp::NumericTraits<TCD>::narrow(acc);
        }
    }
    return d_regs;
}

} // namespace arch
} // namespace mc

#endif // MC_ARCH_MFMA_EXEC_HH
