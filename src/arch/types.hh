/**
 * @file
 * Architecture-level scalar datatypes and matrix-operand roles shared by
 * the ISA tables, the layout calculator, and the simulator.
 */

#ifndef MC_ARCH_TYPES_HH
#define MC_ARCH_TYPES_HH

#include <cstddef>
#include <string>

namespace mc {
namespace arch {

/** GPU target architecture for an instruction table or device model. */
enum class GpuArch
{
    Cdna1,  ///< AMD Instinct MI100 (first-generation Matrix Cores)
    Cdna2,  ///< AMD Instinct MI200 series (Matrix Cores, wave64)
    Ampere, ///< Nvidia A100 (Tensor Cores, warp32)
};

/** Human-readable architecture name. */
const char *gpuArchName(GpuArch a);

/**
 * Scalar element types supported by CDNA2 Matrix Cores (and, for the
 * comparison model, Ampere Tensor Cores).
 */
enum class DataType
{
    F64,
    F32,
    F16,
    BF16,
    I8,
    I32,
};

/** Short lowercase mnemonic, e.g. "f32". */
const char *dataTypeName(DataType dt);

/** Storage size of one element in bytes. */
std::size_t dataTypeBytes(DataType dt);

/** True for the floating-point types. */
bool isFloatType(DataType dt);

/** Parse a mnemonic ("f16", "bf16", ...); fatal on unknown names. */
DataType parseDataType(const std::string &name);

/** Role of an operand in D <- A*B + C. */
enum class Operand
{
    A, ///< m x k multiplicand
    B, ///< k x n multiplicand
    C, ///< m x n addend
    D, ///< m x n destination
};

/** Name of an operand role ("A".."D"). */
const char *operandName(Operand op);

/** Row- or column-major storage order for in-memory matrices. */
enum class MemLayout
{
    RowMajor,
    ColMajor,
};

/**
 * The m x n x k dimensions of a matrix fused multiply-add, with the
 * number of independent blocks the instruction computes in parallel.
 */
struct MfmaShape
{
    int m = 0;
    int n = 0;
    int k = 0;
    int blocks = 1;

    /** Floating-point operations performed: 2*m*n*k per block. */
    long long flops() const { return 2ll * m * n * k * blocks; }

    /** "16x16x16" or "4x4x4 (x16 blocks)". */
    std::string toString() const;

    friend bool operator==(const MfmaShape &, const MfmaShape &) = default;
};

} // namespace arch
} // namespace mc

#endif // MC_ARCH_TYPES_HH
