#include "layout.hh"

#include "common/logging.hh"

namespace mc {
namespace arch {

OperandLayout::OperandLayout(const MfmaInstruction &inst, Operand operand)
    : _operand(operand),
      _blocks(inst.shape.blocks),
      _waveSize(inst.waveSize)
{
    const int m = inst.shape.m;
    const int n = inst.shape.n;
    const int k = inst.shape.k;

    mc_assert(_waveSize % _blocks == 0,
              "wave size ", _waveSize, " not divisible by ", _blocks,
              " blocks for ", inst.mnemonic);
    _lanesPerBlock = _waveSize / _blocks;

    switch (operand) {
      case Operand::A:
        _rows = m;
        _cols = k;
        break;
      case Operand::B:
        _rows = k;
        _cols = n;
        break;
      case Operand::C:
      case Operand::D:
        _rows = m;
        _cols = n;
        break;
    }

    if (operand == Operand::A || operand == Operand::B) {
        // The lane dimension covers the m (or n) extent; remaining lanes
        // split the k extent into contiguous per-lane groups.
        const int lane_extent = (operand == Operand::A) ? m : n;
        mc_assert(_lanesPerBlock % lane_extent == 0,
                  inst.mnemonic, ": ", _lanesPerBlock,
                  " lanes/block not divisible by extent ", lane_extent);
        const int groups = _lanesPerBlock / lane_extent;
        mc_assert(k % groups == 0,
                  inst.mnemonic, ": k=", k, " not divisible by ", groups,
                  " lane groups");
        _kPerGroup = k / groups;
        _elementsPerLane = _kPerGroup;
    } else {
        mc_assert(_lanesPerBlock % n == 0,
                  inst.mnemonic, ": ", _lanesPerBlock,
                  " lanes/block not divisible by n=", n);
        _rowGroups = _lanesPerBlock / n;
        mc_assert((m * n) % _lanesPerBlock == 0,
                  inst.mnemonic, ": accumulator tile not divisible across"
                  " lanes");
        _elementsPerLane = (m * n) / _lanesPerBlock;
        _rowSubgroup = _elementsPerLane < 4 ? _elementsPerLane : 4;
        mc_assert(m % (_rowSubgroup * _rowGroups) == 0,
                  inst.mnemonic, ": row interleave does not tile m=", m);
    }
}

int
OperandLayout::vgprCount(std::size_t element_bytes) const
{
    const std::size_t bytes = _elementsPerLane * element_bytes;
    return static_cast<int>((bytes + 3) / 4);
}

RegLocation
OperandLayout::locationOf(const ElementCoord &coord) const
{
    mc_assert(coord.block >= 0 && coord.block < _blocks,
              "block ", coord.block, " out of range");
    mc_assert(coord.row >= 0 && coord.row < _rows,
              "row ", coord.row, " out of range for ", _rows);
    mc_assert(coord.col >= 0 && coord.col < _cols,
              "col ", coord.col, " out of range for ", _cols);

    const int base = coord.block * _lanesPerBlock;
    RegLocation loc;

    switch (_operand) {
      case Operand::A: {
        // lane = (k / kPerGroup) * m + row;  slot = k % kPerGroup
        loc.lane = base + (coord.col / _kPerGroup) * _rows + coord.row;
        loc.slot = coord.col % _kPerGroup;
        break;
      }
      case Operand::B: {
        // lane = (k / kPerGroup) * n + col;  slot = k % kPerGroup
        loc.lane = base + (coord.row / _kPerGroup) * _cols + coord.col;
        loc.slot = coord.row % _kPerGroup;
        break;
      }
      case Operand::C:
      case Operand::D: {
        // row = (slot % s) + s*r0 + s*rowGroups*(slot / s)
        const int s = _rowSubgroup;
        const int span = s * _rowGroups;
        const int r0 = (coord.row % span) / s;
        loc.lane = base + r0 * _cols + coord.col;
        loc.slot = (coord.row % s) + s * (coord.row / span);
        break;
      }
    }
    return loc;
}

ElementCoord
OperandLayout::elementAt(const RegLocation &loc) const
{
    mc_assert(loc.lane >= 0 && loc.lane < _waveSize,
              "lane ", loc.lane, " out of range");
    mc_assert(loc.slot >= 0 && loc.slot < _elementsPerLane,
              "slot ", loc.slot, " out of range");

    ElementCoord coord;
    coord.block = loc.lane / _lanesPerBlock;
    const int lb = loc.lane % _lanesPerBlock;

    switch (_operand) {
      case Operand::A: {
        coord.row = lb % _rows;
        coord.col = (lb / _rows) * _kPerGroup + loc.slot;
        break;
      }
      case Operand::B: {
        coord.col = lb % _cols;
        coord.row = (lb / _cols) * _kPerGroup + loc.slot;
        break;
      }
      case Operand::C:
      case Operand::D: {
        const int s = _rowSubgroup;
        const int span = s * _rowGroups;
        const int r0 = lb / _cols;
        coord.col = lb % _cols;
        coord.row = (loc.slot % s) + s * r0 + span * (loc.slot / s);
        break;
      }
    }
    return coord;
}

} // namespace arch
} // namespace mc
