#include "calibration.hh"

#include "common/hash.hh"
#include "common/logging.hh"

namespace mc {
namespace arch {

const DatatypePowerPerf &
Cdna2Calibration::perfFor(DataType ab_type) const
{
    switch (ab_type) {
      case DataType::F64: return f64;
      case DataType::F32: return f32;
      case DataType::F16: return f16;
      case DataType::BF16: return bf16;
      case DataType::I8: return i8;
      case DataType::I32: return i8;
    }
    mc_panic("unreachable datatype in perfFor");
}

double
AmpereCalibration::issueOverheadFor(DataType ab_type) const
{
    switch (ab_type) {
      case DataType::F64:
        return issueOverheadF64;
      default:
        return issueOverheadF16;
    }
}

std::uint64_t
calibrationFingerprint(const Cdna2Calibration &cal)
{
    // Every field participates: a calibration edit anywhere must
    // invalidate plans keyed on the old fingerprint. Keep this in sync
    // with the Cdna2Calibration field list.
    std::uint64_t h = hashString(cal.deviceName);
    h = hashCombine(h, static_cast<std::uint64_t>(cal.arch));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.gcdsPerPackage));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.cusPerGcd));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.matrixCoresPerCu));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.simdsPerCu));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.simdWidth));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.wavefrontSize));
    h = hashDouble(h, cal.clockHz);
    h = hashCombine(h, cal.hbmBytesPerGcd);
    h = hashDouble(h, cal.hbmBwPerGcd);
    h = hashCombine(h, cal.l2BytesPerGcd);
    h = hashDouble(h, cal.powerCapW);
    h = hashDouble(h, cal.dvfsTargetW);
    h = hashDouble(h, cal.idlePowerW);
    for (const DatatypePowerPerf *perf :
         {&cal.f64, &cal.f32, &cal.f16, &cal.bf16, &cal.i8}) {
        h = hashDouble(h, perf->issueOverheadFrac);
        h = hashDouble(h, perf->energyPerFlopJ);
        h = hashDouble(h, perf->basePowerW);
    }
    h = hashDouble(h, cal.launchLatencySec);
    h = hashDouble(h, cal.dispatchCyclesPerWorkgroup);
    h = hashCombine(h, static_cast<std::uint64_t>(cal.dispatchPipelineDepth));
    h = hashCombine(h, static_cast<std::uint64_t>(cal.cyclesPerValuInst));
    h = hashDouble(h, cal.simdGemmEfficiency);
    return h;
}

const Cdna2Calibration &
defaultCdna2()
{
    static const Cdna2Calibration cal{};
    return cal;
}

const Cdna2Calibration &
mi100Calibration()
{
    static const Cdna2Calibration cal = [] {
        Cdna2Calibration c;
        c.arch = GpuArch::Cdna1;
        c.deviceName = "AMD Instinct MI100";
        c.gcdsPerPackage = 1;
        c.cusPerGcd = 120;
        c.clockHz = 1.502e9;
        c.hbmBytesPerGcd = 32ull << 30;
        c.hbmBwPerGcd = 1.23e12;
        c.l2BytesPerGcd = 8ull << 20;
        c.powerCapW = 300.0;
        c.dvfsTargetW = 290.0;
        c.idlePowerW = 40.0;
        // Plausible-scale first-generation power coefficients (7 nm,
        // lower clocks): not paper-calibrated, extension study only.
        c.f64 = DatatypePowerPerf{0.168, 6.5e-12, 70.0};
        c.f32 = DatatypePowerPerf{0.098, 2.6e-12, 66.0};
        c.f16 = DatatypePowerPerf{0.094, 0.8e-12, 64.0};
        c.bf16 = c.f16;
        c.i8 = DatatypePowerPerf{0.094, 0.7e-12, 63.0};
        return c;
    }();
    return cal;
}

const AmpereCalibration &
defaultAmpere()
{
    static const AmpereCalibration cal{};
    return cal;
}

} // namespace arch
} // namespace mc
