/**
 * @file
 * Calibrated device parameters.
 *
 * Everything the paper either reads from a datasheet or *measures once*
 * on real silicon is collected here as a named constant, so the line
 * between calibration inputs and model outputs stays explicit (see
 * DESIGN.md section 2). All derived quantities — throughput curves, power
 * fits, GEMM crossovers — are produced by the simulator from these.
 */

#ifndef MC_ARCH_CALIBRATION_HH
#define MC_ARCH_CALIBRATION_HH

#include <cstdint>

#include "arch/types.hh"

namespace mc {
namespace arch {

/**
 * Per-datatype parameters measured by the paper: sustained-issue
 * overhead (the gap between Table II issue intervals and the achieved
 * plateau of Fig. 3) and the Eq. 3 power-model coefficients.
 */
struct DatatypePowerPerf
{
    /**
     * Fractional overhead on the MFMA issue interval observed under a
     * saturating kernel (loop control and dispatch bubbles sharing the
     * wavefront's issue port). 0.10 means a 32-cycle instruction
     * sustains one issue per 35.2 cycles.
     */
    double issueOverheadFrac = 0.0;
    /** Dynamic energy per floating-point operation, joules (Eq. 3 slope). */
    double energyPerFlopJ = 0.0;
    /**
     * Package power with the kernel resident but extrapolated to zero
     * throughput, watts (Eq. 3 intercept; includes idle power plus the
     * ramped-clock overhead of both GCDs).
     */
    double basePowerW = 0.0;
};

/**
 * Calibration of an AMD CDNA-family package. Defaults describe the
 * MI250X (CDNA2); mi100Calibration() returns the first-generation
 * MI100 instance used by the generational-comparison study.
 */
struct Cdna2Calibration
{
    /** Instruction-table architecture this device executes. */
    GpuArch arch = GpuArch::Cdna2;
    /** Marketing name used in device properties. */
    const char *deviceName = "AMD Instinct MI250X";

    // ---- Topology (CDNA2 whitepaper / MI250X datasheet) ----------------
    int gcdsPerPackage = 2;
    int cusPerGcd = 110;
    int matrixCoresPerCu = 4;
    int simdsPerCu = 4;
    int simdWidth = 16;
    int wavefrontSize = 64;

    /** Engine clock, Hz (the paper's f = 1700 MHz). */
    double clockHz = 1.7e9;

    // ---- Memory system --------------------------------------------------
    /** HBM2e capacity per GCD, bytes (64 GiB). */
    std::uint64_t hbmBytesPerGcd = 64ull << 30;
    /** Peak HBM bandwidth per GCD, bytes/s (3.2 TB/s per package). */
    double hbmBwPerGcd = 1.6e12;
    /** L2 capacity per GCD, bytes (8 MiB). */
    std::uint64_t l2BytesPerGcd = 8ull << 20;

    // ---- Power (datasheet + paper Section VI) ---------------------------
    /** Vendor power cap for the package, watts. */
    double powerCapW = 560.0;
    /**
     * Package power observed at the FP64 peak (541 W): the effective
     * steady-state target the power governor regulates to, watts.
     */
    double dvfsTargetW = 541.0;
    /** Whole-package idle power, watts (paper: 88 W). */
    double idlePowerW = 88.0;

    // ---- Per-datatype measured characteristics --------------------------
    // Issue overheads reproduce the Fig. 3 plateaus (175 / 43.6 / 41
    // TFLOPS per GCD); energy/base reproduce Eq. 3.
    DatatypePowerPerf f64{0.168, 5.88e-12, 130.0};
    DatatypePowerPerf f32{0.098, 2.18e-12, 125.5};
    DatatypePowerPerf f16{0.094, 0.61e-12, 123.0};
    DatatypePowerPerf bf16{0.094, 0.61e-12, 123.0};
    DatatypePowerPerf i8{0.094, 0.55e-12, 122.0};

    // ---- Kernel-launch / dispatch costs ---------------------------------
    /** Fixed host-to-device launch latency, seconds. */
    double launchLatencySec = 6.0e-6;
    /** Incremental dispatch cost per workgroup, cycles. */
    double dispatchCyclesPerWorkgroup = 220.0;
    /**
     * Workgroup launches that pay their dispatch cost serially before
     * the device is full and dispatch overlaps with execution
     * (roughly two workgroups per CU of pipeline fill).
     */
    int dispatchPipelineDepth = 220;

    // ---- SIMD (vector ALU) execution ------------------------------------
    /**
     * Cycles one wavefront occupies a 16-wide SIMD per VALU instruction
     * (64 threads / 16 lanes).
     */
    int cyclesPerValuInst = 4;
    /**
     * Throughput derating of the SIMD-only GEMM path relative to the
     * VALU peak (register pressure, no MFMA-optimized data paths);
     * calibrated so HGEMM lands where Fig. 7 places it.
     */
    double simdGemmEfficiency = 0.45;

    /** Per-datatype parameter lookup keyed by the MFMA A/B type. */
    const DatatypePowerPerf &perfFor(DataType ab_type) const;

    /** Matrix Core count in one GCD (the 440 of Eq. 2). */
    int matrixCoresPerGcd() const { return cusPerGcd * matrixCoresPerCu; }
};

/**
 * Calibration of the Nvidia A100 (Ampere) comparison device.
 */
struct AmpereCalibration
{
    int smCount = 108;
    int tensorCoresPerSm = 4;
    int warpSize = 32;
    /** Boost clock, Hz (paper: 1410 MHz). */
    double clockHz = 1.41e9;
    /** HBM2 capacity, bytes (40 GiB). */
    std::uint64_t hbmBytes = 40ull << 30;
    /** Peak memory bandwidth, bytes/s. */
    double hbmBw = 1.555e12;

    /**
     * Issue overheads reproducing the measured peaks of Fig. 4:
     * 290/312 TFLOPS mixed (7.6 %), 19.4/19.5 TFLOPS double (0.5 %).
     */
    double issueOverheadF16 = 0.076;
    double issueOverheadF64 = 0.005;

    double issueOverheadFor(DataType ab_type) const;
};

/**
 * Stable 64-bit digest of every field of @p cal.
 *
 * Two calibrations hash equal iff they would plan and time kernels
 * identically, so caches keyed on device behaviour (e.g. the GEMM plan
 * cache) can use this as the device component of their key.
 */
std::uint64_t calibrationFingerprint(const Cdna2Calibration &cal);

/** The default MI250X calibration used across the suite. */
const Cdna2Calibration &defaultCdna2();

/**
 * The MI100 (CDNA1) calibration: one die of 120 CUs at 1502 MHz,
 * 32 GiB HBM2 at 1.23 TB/s, 300 W TDP, and the CDNA1 instruction
 * table (no FP64 MFMA, half-rate BF16). Power coefficients are
 * plausible-scale estimates — the paper does not characterize MI100
 * power — and are used only by the generational extension study.
 */
const Cdna2Calibration &mi100Calibration();

/** The default A100 calibration used by the comparison benches. */
const AmpereCalibration &defaultAmpere();

} // namespace arch
} // namespace mc

#endif // MC_ARCH_CALIBRATION_HH
