/**
 * @file
 * Matrix-element to register-lane mapping for MFMA operands.
 *
 * MFMA instructions read their operands from vector registers spread
 * across the 64 lanes of a wavefront; which lane and register slot holds
 * element (row, col) of each operand is fixed by the instruction. AMD
 * publishes this mapping through the amd_matrix_instruction_calculator
 * tool; this class re-implements the CDNA2 mapping family so that
 * fragment loads/stores, the functional executor, and the rocWMMA-style
 * API all agree on an explicit in-register data layout.
 *
 * The mapping is parametric in the instruction shape:
 *  - blocks partition the wavefront into equal lane groups;
 *  - A places row = lane % m within a block, with each lane holding
 *    k/groups consecutive k-slices (groups = lanes_per_block / m);
 *  - B mirrors A with columns in the lane dimension;
 *  - C/D place col = lane % n, and each lane's slots cover rows in
 *    nested groups of four (the AccVGPR row-interleave pattern).
 */

#ifndef MC_ARCH_LAYOUT_HH
#define MC_ARCH_LAYOUT_HH

#include "arch/mfma_isa.hh"
#include "arch/types.hh"

namespace mc {
namespace arch {

/** Where one matrix element lives inside the wavefront's registers. */
struct RegLocation
{
    int lane = 0; ///< wavefront lane (0..waveSize-1)
    int slot = 0; ///< per-lane element slot (0..elementsPerLane-1)

    friend bool operator==(const RegLocation &, const RegLocation &) = default;
};

/** Logical coordinates of one operand element. */
struct ElementCoord
{
    int block = 0;
    int row = 0; ///< row for A/C/D; k-index for B
    int col = 0; ///< k-index for A; column for B/C/D

    friend bool operator==(const ElementCoord &, const ElementCoord &) = default;
};

/**
 * The register layout of one operand of one MFMA instruction.
 */
class OperandLayout
{
  public:
    /**
     * Build the layout for @p operand of @p inst.
     *
     * Panics if the instruction's shape violates the divisibility
     * constraints of the CDNA2 mapping family (which no table entry
     * does; the constructor is the property test for new entries).
     */
    OperandLayout(const MfmaInstruction &inst, Operand operand);

    Operand operand() const { return _operand; }

    /** Logical rows of this operand (m for A/C/D, k for B). */
    int rows() const { return _rows; }
    /** Logical columns (k for A, n for B/C/D). */
    int cols() const { return _cols; }
    int blocks() const { return _blocks; }
    int waveSize() const { return _waveSize; }

    /** Elements stored by each lane. */
    int elementsPerLane() const { return _elementsPerLane; }

    /**
     * 32-bit vector registers each lane needs for this operand given
     * the element size in bytes (FP16 packs two per VGPR; FP64 uses
     * two VGPRs per element).
     */
    int vgprCount(std::size_t element_bytes) const;

    /** Map a logical element to its (lane, slot) register location. */
    RegLocation locationOf(const ElementCoord &coord) const;

    /** Inverse mapping: which element lives at (lane, slot). */
    ElementCoord elementAt(const RegLocation &loc) const;

  private:
    Operand _operand;
    int _rows;
    int _cols;
    int _blocks;
    int _waveSize;
    int _lanesPerBlock;
    int _elementsPerLane;
    // A/B parameters.
    int _kPerGroup = 1;
    // C/D parameters.
    int _rowGroups = 1;     ///< lanesPerBlock / n
    int _rowSubgroup = 1;   ///< min(4, elementsPerLane)
};

} // namespace arch
} // namespace mc

#endif // MC_ARCH_LAYOUT_HH
