#include "types.hh"

#include <cstdio>

#include "common/logging.hh"

namespace mc {
namespace arch {

const char *
gpuArchName(GpuArch a)
{
    switch (a) {
      case GpuArch::Cdna1: return "AMD CDNA1";
      case GpuArch::Cdna2: return "AMD CDNA2";
      case GpuArch::Ampere: return "Nvidia Ampere";
    }
    return "unknown";
}

const char *
dataTypeName(DataType dt)
{
    switch (dt) {
      case DataType::F64: return "f64";
      case DataType::F32: return "f32";
      case DataType::F16: return "f16";
      case DataType::BF16: return "bf16";
      case DataType::I8: return "i8";
      case DataType::I32: return "i32";
    }
    return "unknown";
}

std::size_t
dataTypeBytes(DataType dt)
{
    switch (dt) {
      case DataType::F64: return 8;
      case DataType::F32: return 4;
      case DataType::F16: return 2;
      case DataType::BF16: return 2;
      case DataType::I8: return 1;
      case DataType::I32: return 4;
    }
    return 0;
}

bool
isFloatType(DataType dt)
{
    switch (dt) {
      case DataType::F64:
      case DataType::F32:
      case DataType::F16:
      case DataType::BF16:
        return true;
      case DataType::I8:
      case DataType::I32:
        return false;
    }
    return false;
}

DataType
parseDataType(const std::string &name)
{
    if (name == "f64" || name == "fp64" || name == "double")
        return DataType::F64;
    if (name == "f32" || name == "fp32" || name == "float")
        return DataType::F32;
    if (name == "f16" || name == "fp16" || name == "half")
        return DataType::F16;
    if (name == "bf16" || name == "bfloat16")
        return DataType::BF16;
    if (name == "i8" || name == "int8")
        return DataType::I8;
    if (name == "i32" || name == "int32")
        return DataType::I32;
    mc_fatal("unknown datatype name '", name, "'");
}

const char *
operandName(Operand op)
{
    switch (op) {
      case Operand::A: return "A";
      case Operand::B: return "B";
      case Operand::C: return "C";
      case Operand::D: return "D";
    }
    return "?";
}

std::string
MfmaShape::toString() const
{
    char buf[64];
    if (blocks == 1) {
        std::snprintf(buf, sizeof(buf), "%dx%dx%d", m, n, k);
    } else {
        std::snprintf(buf, sizeof(buf), "%dx%dx%d (x%d blocks)",
                      m, n, k, blocks);
    }
    return buf;
}

} // namespace arch
} // namespace mc
